package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowReduceRankIdentity(t *testing.T) {
	if Rank(Identity(10)) != 10 {
		t.Fatal("rank of identity wrong")
	}
	if Rank(NewMat(5, 7)) != 0 {
		t.Fatal("rank of zero matrix wrong")
	}
}

func TestRowReduceDuplicateRows(t *testing.T) {
	m := MatFromRows([][]int{
		{1, 0, 1},
		{1, 0, 1},
		{0, 1, 1},
	})
	if got := Rank(m); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
}

func TestRowReduceRREFShape(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		a := randMat(r, 1+r.Intn(25), 1+r.Intn(25))
		e := RowReduce(a, true, false, nil)
		// each pivot column must contain a single 1, in the pivot row
		for i, col := range e.PivotCols {
			for row := 0; row < a.Rows(); row++ {
				want := row == i
				if e.R.Get(row, col) != want {
					t.Fatalf("RREF pivot column %d not unit at row %d", col, row)
				}
			}
		}
		// rows past rank must be zero
		for row := e.Rank; row < a.Rows(); row++ {
			if e.R.RowWeight(row) != 0 {
				t.Fatalf("row %d below rank nonzero", row)
			}
		}
	}
}

func TestRowReduceTracksOps(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randMat(rr, 1+rr.Intn(20), 1+rr.Intn(20))
		e := RowReduce(a, true, true, nil)
		return e.RowOps.Mul(a).Equal(e.R)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestRowReduceColOrder(t *testing.T) {
	// with reversed column order, the first pivot must be the last column
	// that contains a 1
	a := MatFromRows([][]int{
		{1, 1, 0},
		{0, 1, 1},
	})
	order := []int{2, 1, 0}
	e := RowReduce(a, true, false, order)
	if e.Rank != 2 {
		t.Fatalf("rank = %d, want 2", e.Rank)
	}
	if e.PivotCols[0] != 2 {
		t.Fatalf("first pivot = %d, want 2", e.PivotCols[0])
	}
}

func TestSolveConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows, cols := 1+rr.Intn(25), 1+rr.Intn(25)
		a := randMat(rr, rows, cols)
		// construct a consistent rhs from a random x
		x0 := randVec(rr, cols)
		b := a.MulVec(x0)
		x, ok := Solve(a, b)
		if !ok {
			return false
		}
		return a.MulVec(x).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x + y = 0, x + y = 1 has no solution
	a := MatFromRows([][]int{{1, 1}, {1, 1}})
	b := VecFromInts([]int{0, 1})
	if _, ok := Solve(a, b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := MatFromRows([][]int{{1, 1, 0}, {0, 1, 1}})
	x, ok := Solve(a, NewVec(2))
	if !ok || !x.IsZero() {
		t.Fatal("zero rhs should give zero solution with free vars zero")
	}
}

func TestNullspaceBasis(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randMat(rr, 1+rr.Intn(20), 1+rr.Intn(20))
		ns := NullspaceBasis(a)
		if ns.Rows() != a.Cols()-Rank(a) {
			return false
		}
		// every basis vector annihilated by a
		for i := 0; i < ns.Rows(); i++ {
			if !a.MulVec(ns.Row(i)).IsZero() {
				return false
			}
		}
		// basis rows independent
		return Rank(ns) == ns.Rows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBasisSpansAndInRowSpace(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		a := randMat(r, 1+r.Intn(20), 1+r.Intn(20))
		basis := RowBasis(a)
		e := RowReduce(a, true, false, nil)
		if basis.Rows() != e.Rank {
			t.Fatalf("RowBasis rows = %d, want rank %d", basis.Rows(), e.Rank)
		}
		// every original row is in the row space
		for i := 0; i < a.Rows(); i++ {
			if !InRowSpace(basis, e.PivotCols, a.Row(i)) {
				t.Fatalf("row %d not in its own row space", i)
			}
		}
	}
}

func TestInRowSpaceRejects(t *testing.T) {
	a := MatFromRows([][]int{{1, 1, 0}})
	e := RowReduce(a, true, false, nil)
	basis := RowBasis(a)
	if InRowSpace(basis, e.PivotCols, VecFromInts([]int{0, 0, 1})) {
		t.Fatal("vector outside row space accepted")
	}
	if !InRowSpace(basis, e.PivotCols, VecFromInts([]int{1, 1, 0})) {
		t.Fatal("row space member rejected")
	}
}

func TestQuotientBasisCSSToy(t *testing.T) {
	// Steane-like toy: use the [7,4,3] Hamming code for both HX and HZ.
	h := MatFromRows([][]int{
		{1, 0, 1, 0, 1, 0, 1},
		{0, 1, 1, 0, 0, 1, 1},
		{0, 0, 0, 1, 1, 1, 1},
	})
	// Steane code: HX = HZ = h, k = 7 - 3 - 3 = 1
	lx := QuotientBasis(h, h)
	if lx.Rows() != 1 {
		t.Fatalf("Steane logicals = %d, want 1", lx.Rows())
	}
	// logical must be in ker(h) and outside rowspace(h)
	if !h.MulVec(lx.Row(0)).IsZero() {
		t.Fatal("logical not in kernel")
	}
	e := RowReduce(h, true, false, nil)
	if InRowSpace(RowBasis(h), e.PivotCols, lx.Row(0)) {
		t.Fatal("logical inside stabilizer row space")
	}
}

func TestQuotientBasisFullMod(t *testing.T) {
	// modding the kernel by itself leaves nothing
	h := MatFromRows([][]int{{1, 1, 0, 0}})
	ker := NullspaceBasis(h)
	q := QuotientBasis(h, ker)
	if q.Rows() != 0 {
		t.Fatalf("quotient by full kernel = %d rows, want 0", q.Rows())
	}
}
