package gf2

// QuotientBasis returns representatives of a basis of ker(check)/rowspace(mod):
// vectors v with check·v = 0 that are linearly independent of each other and
// of the rows of mod.
//
// For a CSS code this computes logical operators: X logicals are
// QuotientBasis(HZ, HX) (kernel of the Z checks modulo the X stabilizers),
// and symmetrically for Z logicals. For a subsystem code, passing the full
// gauge group as mod yields the *bare* logical operators.
//
// The number of returned rows is dim ker(check) − rank(mod ∩ ker...). For a
// valid CSS code it equals k = n − rank(HX) − rank(HZ).
func QuotientBasis(check, mod *Mat) *Mat {
	if check.Cols() != mod.Cols() {
		panic("gf2: QuotientBasis column mismatch")
	}
	ker := NullspaceBasis(check)
	// Incrementally reduce kernel vectors against an RREF accumulation of
	// mod's rows plus already-accepted representatives.
	n := check.Cols()
	type redRow struct {
		v   Vec
		piv int
	}
	var red []redRow

	reduce := func(v Vec) Vec {
		r := v.Clone()
		for _, rr := range red {
			if r.Get(rr.piv) {
				r.Xor(rr.v)
			}
		}
		return r
	}
	insert := func(v Vec) bool {
		r := reduce(v)
		if r.IsZero() {
			return false
		}
		piv := r.Support()[0]
		// keep rows reduced against each other for stability
		for i := range red {
			if red[i].v.Get(piv) {
				red[i].v.Xor(r)
			}
		}
		red = append(red, redRow{v: r, piv: piv})
		return true
	}

	for i := 0; i < mod.Rows(); i++ {
		insert(mod.Row(i))
	}

	var logicals []Vec
	for i := 0; i < ker.Rows(); i++ {
		v := ker.Row(i)
		if insert(v) {
			logicals = append(logicals, v)
		}
	}
	out := NewMat(len(logicals), n)
	for i, v := range logicals {
		out.SetRow(i, v)
	}
	return out
}
