// Package gf2 implements dense bit-packed linear algebra over GF(2).
//
// It provides the exact-arithmetic substrate used throughout the decoder
// stack: ordered-statistics decoding (Gaussian elimination / RREF), logical
// operator computation for stabilizer codes (kernel and quotient bases), and
// construction-time validation of parity-check matrices.
//
// Vectors and matrices pack 64 bits per machine word. All operations are
// exact; there is no floating point in this package.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Vec is a bit vector over GF(2). The zero value is an empty vector; use
// NewVec to create one with a given length.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{n: n, w: make([]uint64, wordsFor(n))}
}

// VecFromInts builds a vector from a slice of 0/1 ints.
func VecFromInts(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b&1 == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromSupport builds a length-n vector with ones at the given positions.
func VecFromSupport(n int, support []int) Vec {
	v := NewVec(n)
	for _, i := range support {
		v.Set(i, true)
	}
	return v
}

// Len returns the number of bits in the vector.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	return v.w[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to the given value.
func (v Vec) Set(i int, b bool) {
	if b {
		v.w[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.w[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	v.w[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Xor sets v ^= u. The vectors must have equal length.
func (v Vec) Xor(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: Xor length mismatch %d != %d", v.n, u.n))
	}
	for i := range v.w {
		v.w[i] ^= u.w[i]
	}
}

// And sets v &= u. The vectors must have equal length.
func (v Vec) And(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: And length mismatch %d != %d", v.n, u.n))
	}
	for i := range v.w {
		v.w[i] &= u.w[i]
	}
}

// Zero clears all bits.
func (v Vec) Zero() {
	for i := range v.w {
		v.w[i] = 0
	}
}

// IsZero reports whether all bits are clear.
func (v Vec) IsZero() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Weight returns the Hamming weight (number of set bits).
func (v Vec) Weight() int {
	n := 0
	for _, w := range v.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Dot returns the GF(2) inner product <v, u> (parity of the AND).
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: Dot length mismatch %d != %d", v.n, u.n))
	}
	var acc uint64
	for i := range v.w {
		acc ^= v.w[i] & u.w[i]
	}
	return bits.OnesCount64(acc)&1 == 1
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	u := Vec{n: v.n, w: make([]uint64, len(v.w))}
	copy(u.w, v.w)
	return u
}

// CopyFrom overwrites v with the contents of u (equal lengths required).
func (v Vec) CopyFrom(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: CopyFrom length mismatch %d != %d", v.n, u.n))
	}
	copy(v.w, u.w)
}

// Equal reports whether v and u are identical bit vectors.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// ByteLen returns the number of bytes needed to serialize v (8 bits per
// byte, LSB first).
func (v Vec) ByteLen() int { return (v.n + 7) / 8 }

// Words returns the vector's backing words (bit i of Words()[i/64] is
// bit i of the vector; tail bits beyond Len are zero). The slice aliases
// the vector — callers must treat it as read-only. It exists for
// word-at-a-time consumers like the batch decode kernels, which scatter
// sparse vectors into lane words without the per-bit Get loop or the
// allocation Support would cost.
func (v Vec) Words() []uint64 { return v.w }

// AppendBytes appends the vector's packed bits to dst — ByteLen bytes,
// little-endian bit order within each byte — and returns the extended
// slice. The wire format of the decode service.
func (v Vec) AppendBytes(dst []byte) []byte {
	nb := v.ByteLen()
	for i := 0; i < nb; i++ {
		dst = append(dst, byte(v.w[i/8]>>(8*(uint(i)%8))))
	}
	return dst
}

// SetBytes overwrites v from the packed representation produced by
// AppendBytes. b must hold exactly ByteLen bytes; pad bits beyond Len in
// the final byte are discarded.
func (v Vec) SetBytes(b []byte) error {
	if len(b) != v.ByteLen() {
		return fmt.Errorf("gf2: SetBytes length %d, want %d", len(b), v.ByteLen())
	}
	for i := range v.w {
		v.w[i] = 0
	}
	for i, x := range b {
		v.w[i/8] |= uint64(x) << (8 * (uint(i) % 8))
	}
	if r := uint(v.n) % wordBits; r != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= ^uint64(0) >> (wordBits - r)
	}
	return nil
}

// Support returns the sorted indices of set bits.
func (v Vec) Support() []int {
	out := make([]int, 0, v.Weight())
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Ints returns the vector as a slice of 0/1 ints.
func (v Vec) Ints() []int {
	out := make([]int, v.n)
	for _, i := range v.Support() {
		out[i] = 1
	}
	return out
}

// String renders the vector as a 0/1 string, LSB first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
