package gf2

import (
	"bytes"
	"testing"
)

// FuzzVecSetBytes fuzzes the wire packing of bit vectors (the decode
// service's syndrome/estimate format): SetBytes must reject any
// wrong-length input without panicking, and for correct lengths
// AppendBytes∘SetBytes must round-trip exactly up to the documented
// masking of pad bits in the final byte.
func FuzzVecSetBytes(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(1, []byte{0x01})
	f.Add(8, []byte{0xff})
	f.Add(9, []byte{0xff, 0x01})
	f.Add(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(65, []byte{1, 2, 3, 4, 5, 6, 7, 8, 0xff})
	f.Add(130, []byte(nil))
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 1<<16 {
			t.Skip()
		}
		v := NewVec(n)
		if len(data) != v.ByteLen() {
			if err := v.SetBytes(data); err == nil {
				t.Fatalf("SetBytes accepted %d bytes for a %d-bit vector (want %d)", len(data), n, v.ByteLen())
			}
			return
		}
		if err := v.SetBytes(data); err != nil {
			t.Fatal(err)
		}

		// the canonical image: input with the pad bits of the final byte
		// cleared
		want := append([]byte(nil), data...)
		if r := n % 8; r != 0 && len(want) > 0 {
			want[len(want)-1] &= byte(1<<r) - 1
		}
		got := v.AppendBytes(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendBytes(SetBytes(x)) = %x, want %x", got, want)
		}

		// a second round-trip must be a fixed point
		u := NewVec(n)
		if err := u.SetBytes(got); err != nil {
			t.Fatal(err)
		}
		if !u.Equal(v) {
			t.Fatal("second SetBytes round-trip diverged")
		}

		// weight and support must agree with the packed form
		w := 0
		for _, b := range want {
			for ; b != 0; b &= b - 1 {
				w++
			}
		}
		if v.Weight() != w {
			t.Fatalf("Weight=%d, packed popcount=%d", v.Weight(), w)
		}
	})
}
