package gf2

// Echelon holds the result of Gaussian elimination over GF(2).
//
// R is the reduced matrix. When Full is true R is in reduced row echelon
// form (RREF): each pivot column has a single 1, located in its pivot row.
// PivotCols[i] is the column of the pivot in row i (rows 0..Rank-1);
// RowOps, if requested, records the elimination as a Rank(A).Rows×A.Rows
// transform T with R[:Rank] = (T · A)[:Rank].
type Echelon struct {
	R         *Mat
	Rank      int
	PivotCols []int
	RowOps    *Mat // nil unless requested
	Full      bool
}

// RowReduce computes an echelon form of a copy of a.
//
// If full is true the result is the RREF (entries above pivots cleared too);
// otherwise only entries below pivots are cleared. If trackOps is true the
// returned Echelon carries the accumulated row-operation matrix T such that
// R = T·a; this is what OSD uses to transform syndromes.
//
// colOrder, when non-nil, gives the order in which columns are scanned for
// pivots (a permutation of 0..cols-1, most-preferred first). OSD passes the
// reliability order here. When nil, natural order is used.
func RowReduce(a *Mat, full, trackOps bool, colOrder []int) Echelon {
	r := a.Clone()
	var ops *Mat
	if trackOps {
		ops = Identity(a.rows)
	}
	order := colOrder
	if order == nil {
		order = make([]int, a.cols)
		for j := range order {
			order[j] = j
		}
	}
	pivots := make([]int, 0, minInt(a.rows, a.cols))
	row := 0
	for _, col := range order {
		if row >= r.rows {
			break
		}
		// find a pivot at or below `row`
		sel := -1
		for i := row; i < r.rows; i++ {
			if r.Get(i, col) {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		r.SwapRows(row, sel)
		if ops != nil {
			ops.SwapRows(row, sel)
		}
		lo := row + 1
		if full {
			lo = 0
		}
		for i := lo; i < r.rows; i++ {
			if i != row && r.Get(i, col) {
				r.XorRows(i, row)
				if ops != nil {
					ops.XorRows(i, row)
				}
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return Echelon{R: r, Rank: row, PivotCols: pivots, RowOps: ops, Full: full}
}

// Rank returns the GF(2) rank of a.
func Rank(a *Mat) int {
	return RowReduce(a, false, false, nil).Rank
}

// Solve finds one solution x of a·x = b, or reports ok=false when the system
// is inconsistent. Free variables are set to zero.
func Solve(a *Mat, b Vec) (x Vec, ok bool) {
	if b.Len() != a.rows {
		panic("gf2: Solve rhs length mismatch")
	}
	aug := HStack(a, colVec(b))
	e := RowReduce(aug, true, false, augOrder(a.cols))
	x = NewVec(a.cols)
	for i, col := range e.PivotCols {
		if col == a.cols {
			// pivot in the augmented column ⇒ inconsistent
			return Vec{}, false
		}
		if e.R.Get(i, a.cols) {
			x.Set(col, true)
		}
	}
	// Rows below rank with a 1 in the augmented column also signal
	// inconsistency, but RREF with augOrder scans the augmented column last,
	// so such rows would have produced an augmented pivot above.
	return x, true
}

// augOrder returns the column scan order 0..n-1 followed by n (the augmented
// column), guaranteeing the RHS column is only chosen as a pivot if the
// system is inconsistent.
func augOrder(n int) []int {
	order := make([]int, n+1)
	for i := range order {
		order[i] = i
	}
	return order
}

// colVec returns b as an n×1 matrix.
func colVec(b Vec) *Mat {
	m := NewMat(b.Len(), 1)
	for _, i := range b.Support() {
		m.Set(i, 0, true)
	}
	return m
}

// NullspaceBasis returns a basis (as matrix rows) of {x : a·x = 0}.
// The basis has a.Cols() − Rank(a) rows.
func NullspaceBasis(a *Mat) *Mat {
	e := RowReduce(a, true, false, nil)
	isPivot := make([]bool, a.cols)
	pivotRow := make([]int, a.cols)
	for i, col := range e.PivotCols {
		isPivot[col] = true
		pivotRow[col] = i
	}
	free := make([]int, 0, a.cols-e.Rank)
	for j := 0; j < a.cols; j++ {
		if !isPivot[j] {
			free = append(free, j)
		}
	}
	basis := NewMat(len(free), a.cols)
	for bi, fj := range free {
		basis.Set(bi, fj, true)
		// pivot variables determined by the free column's entries
		for i, col := range e.PivotCols {
			if e.R.Get(i, fj) {
				basis.Set(bi, col, true)
			}
		}
	}
	return basis
}

// RowBasis returns a matrix whose rows form a basis of the row space of a.
func RowBasis(a *Mat) *Mat {
	e := RowReduce(a, true, false, nil)
	out := NewMat(e.Rank, a.cols)
	copy(out.data, e.R.data[:e.Rank*e.R.stride])
	return out
}

// InRowSpace reports whether v lies in the row space of basis, where basis
// must already be in RREF (as produced by RowBasis). It reduces a copy of v
// against the basis rows.
func InRowSpace(basis *Mat, pivotCols []int, v Vec) bool {
	r := v.Clone()
	for i, col := range pivotCols {
		if r.Get(col) {
			r.Xor(Vec{n: basis.cols, w: basis.rowWords(i)})
		}
	}
	return r.IsZero()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
