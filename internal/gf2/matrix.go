package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Mat is a dense bit-packed matrix over GF(2), stored row-major with a
// fixed word stride per row. The zero value is an empty matrix; use NewMat.
type Mat struct {
	rows, cols int
	stride     int // words per row
	data       []uint64
}

// NewMat returns a zero rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	stride := wordsFor(cols)
	return &Mat{rows: rows, cols: cols, stride: stride, data: make([]uint64, rows*stride)}
}

// MatFromRows builds a matrix from a slice of 0/1 int rows. All rows must
// have the same length.
func MatFromRows(rows [][]int) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("gf2: ragged rows")
		}
		for j, b := range r {
			if b&1 == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// Get reports whether entry (i, j) is set.
func (m *Mat) Get(i, j int) bool {
	return m.data[i*m.stride+j/wordBits]>>(uint(j)%wordBits)&1 == 1
}

// Set sets entry (i, j).
func (m *Mat) Set(i, j int, b bool) {
	w := &m.data[i*m.stride+j/wordBits]
	if b {
		*w |= 1 << (uint(j) % wordBits)
	} else {
		*w &^= 1 << (uint(j) % wordBits)
	}
}

// Flip toggles entry (i, j).
func (m *Mat) Flip(i, j int) {
	m.data[i*m.stride+j/wordBits] ^= 1 << (uint(j) % wordBits)
}

// rowWords returns the word slice backing row i.
func (m *Mat) rowWords(i int) []uint64 {
	return m.data[i*m.stride : (i+1)*m.stride]
}

// Row returns a copy of row i as a Vec.
func (m *Mat) Row(i int) Vec {
	v := NewVec(m.cols)
	copy(v.w, m.rowWords(i))
	return v
}

// SetRow overwrites row i with vector v (lengths must match).
func (m *Mat) SetRow(i int, v Vec) {
	if v.n != m.cols {
		panic(fmt.Sprintf("gf2: SetRow length mismatch %d != %d", v.n, m.cols))
	}
	copy(m.rowWords(i), v.w)
}

// Col returns a copy of column j as a Vec of length Rows().
func (m *Mat) Col(j int) Vec {
	v := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.Get(i, j) {
			v.Set(i, true)
		}
	}
	return v
}

// XorRows sets row dst ^= row src.
func (m *Mat) XorRows(dst, src int) {
	d := m.rowWords(dst)
	s := m.rowWords(src)
	for k := range d {
		d[k] ^= s[k]
	}
}

// SwapRows exchanges rows i and j.
func (m *Mat) SwapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.rowWords(i), m.rowWords(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// RowWeight returns the Hamming weight of row i.
func (m *Mat) RowWeight(i int) int {
	return Vec{n: m.cols, w: m.rowWords(i)}.Weight()
}

// MulVec returns m · x (column vector product); x must have length Cols().
func (m *Mat) MulVec(x Vec) Vec {
	if x.n != m.cols {
		panic(fmt.Sprintf("gf2: MulVec dimension mismatch %d != %d", x.n, m.cols))
	}
	out := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		r := Vec{n: m.cols, w: m.rowWords(i)}
		if r.Dot(x) {
			out.Set(i, true)
		}
	}
	return out
}

// Mul returns the matrix product m · b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.cols != b.rows {
		panic(fmt.Sprintf("gf2: Mul dimension mismatch %d != %d", m.cols, b.rows))
	}
	out := NewMat(m.rows, b.cols)
	// Accumulate rows of b for each set bit in the corresponding row of m.
	for i := 0; i < m.rows; i++ {
		dst := out.rowWords(i)
		row := m.rowWords(i)
		for wi, w := range row {
			for w != 0 {
				k := wi*wordBits + trailingZeros(w)
				w &= w - 1
				src := b.rowWords(k)
				for t := range dst {
					dst[t] ^= src[t]
				}
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.rowWords(i)
		for wi, w := range row {
			for w != 0 {
				j := wi*wordBits + trailingZeros(w)
				w &= w - 1
				out.Set(j, i, true)
			}
		}
	}
	return out
}

// Clone returns an independent copy of m.
func (m *Mat) Clone() *Mat {
	out := &Mat{rows: m.rows, cols: m.cols, stride: m.stride, data: make([]uint64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// Equal reports whether m and b have identical shape and entries.
func (m *Mat) Equal(b *Mat) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry is zero.
func (m *Mat) IsZero() bool {
	for _, w := range m.data {
		if w != 0 {
			return false
		}
	}
	return true
}

// HStack returns [m | b] (horizontal concatenation; equal row counts).
func HStack(m, b *Mat) *Mat {
	if m.rows != b.rows {
		panic("gf2: HStack row mismatch")
	}
	out := NewMat(m.rows, m.cols+b.cols)
	for i := 0; i < m.rows; i++ {
		for _, j := range (Vec{n: m.cols, w: m.rowWords(i)}).Support() {
			out.Set(i, j, true)
		}
		for _, j := range (Vec{n: b.cols, w: b.rowWords(i)}).Support() {
			out.Set(i, m.cols+j, true)
		}
	}
	return out
}

// VStack returns [m ; b] (vertical concatenation; equal column counts).
func VStack(m, b *Mat) *Mat {
	if m.cols != b.cols {
		panic("gf2: VStack column mismatch")
	}
	out := NewMat(m.rows+b.rows, m.cols)
	copy(out.data[:m.rows*out.stride], m.data)
	copy(out.data[m.rows*out.stride:], b.data)
	return out
}

// Kron returns the Kronecker product m ⊗ b.
func Kron(m, b *Mat) *Mat {
	out := NewMat(m.rows*b.rows, m.cols*b.cols)
	for i := 0; i < m.rows; i++ {
		for _, j := range (Vec{n: m.cols, w: m.rowWords(i)}).Support() {
			for bi := 0; bi < b.rows; bi++ {
				for _, bj := range (Vec{n: b.cols, w: b.rowWords(bi)}).Support() {
					out.Set(i*b.rows+bi, j*b.cols+bj, true)
				}
			}
		}
	}
	return out
}

// String renders the matrix as rows of 0/1 characters.
func (m *Mat) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString(Vec{n: m.cols, w: m.rowWords(i)}.String())
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
