// Package osd implements ordered-statistics decoding (OSD) post-processing
// for belief propagation, following Roffe et al., "Decoding across the
// quantum low-density parity-check code landscape" (the paper's BP-OSD
// baseline, method OSD-CS).
//
// Given a parity-check matrix H, a syndrome s, and per-bit reliability
// information from BP (posterior LLRs), OSD:
//
//  1. ranks columns from least to most reliable,
//  2. Gaussian-eliminates H in that column order to find a full-rank pivot
//     set ("information set") among the most suspicious bits,
//  3. solves for the pivot bits with all non-pivot bits zero (OSD-0), and
//  4. optionally sweeps low-weight patterns on the non-pivot block,
//     re-solving the pivot bits for each, keeping the lowest-weight
//     solution (OSD-E exhaustive / OSD-CS combination-sweep).
//
// The elimination is the O(N³)-class step the paper's BP-SF decoder avoids;
// the per-pattern re-solve here is only an O(rank/64)-word XOR against the
// cached RREF, so the sweep itself is cheap.
package osd

import (
	"fmt"
	"math/bits"
	"sort"

	"bpsf/internal/gf2"
	"bpsf/internal/sparse"
)

// Method selects the pattern sweep strategy.
type Method int

const (
	// OSD0 uses the base solution only.
	OSD0 Method = iota
	// OSDE sweeps all 2^Order patterns over the Order least-reliable
	// non-pivot columns (exhaustive).
	OSDE
	// OSDCS sweeps all weight-1 patterns over the whole non-pivot block
	// plus all weight-2 patterns within the Order least-reliable non-pivot
	// columns (combination sweep; the paper's "OSD-CS of order 10").
	OSDCS
)

func (m Method) String() string {
	switch m {
	case OSD0:
		return "OSD-0"
	case OSDE:
		return "OSD-E"
	case OSDCS:
		return "OSD-CS"
	default:
		return "OSD-?"
	}
}

// Config parameterizes an OSD decoder.
type Config struct {
	Method Method
	// Order is the sweep depth: λ for OSDCS, w for OSDE. Ignored for OSD0.
	Order int
}

// Result reports an OSD decode.
type Result struct {
	// OK is false when the syndrome is outside the column space of H (no
	// solution exists).
	OK bool
	// ErrHat is the chosen error pattern (valid when OK).
	ErrHat gf2.Vec
	// Weight is the Hamming weight of ErrHat.
	Weight int
	// Patterns is the number of candidate patterns examined (including the
	// base OSD-0 solution).
	Patterns int
}

// Decoder performs OSD against a fixed parity-check matrix.
type Decoder struct {
	h      *sparse.Mat
	hDense *gf2.Mat
	cfg    Config
}

// New builds an OSD decoder for h.
func New(h *sparse.Mat, cfg Config) *Decoder {
	if cfg.Order < 0 {
		panic(fmt.Sprintf("osd: negative order %d", cfg.Order))
	}
	return &Decoder{h: h, hDense: h.ToDense(), cfg: cfg}
}

// Config returns the decoder configuration.
func (d *Decoder) Config() Config { return d.cfg }

// Decode runs OSD on syndrome s with per-bit posterior LLRs llr (lower =
// less reliable = more likely in error). llr must have length H.Cols().
func (d *Decoder) Decode(s gf2.Vec, llr []float64) Result {
	n := d.h.Cols()
	m := d.h.Rows()
	if len(llr) != n {
		panic("osd: llr length mismatch")
	}
	if s.Len() != m {
		panic("osd: syndrome length mismatch")
	}

	// 1. reliability order: most likely in error first (ascending LLR)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return llr[order[a]] < llr[order[b]] })

	// 2. eliminate [H | s] in that column order
	aug := gf2.HStack(d.hDense, colVec(s))
	e := gf2.RowReduce(aug, true, false, order)
	rank := e.Rank

	// consistency: rows at/below rank must not carry a syndrome bit
	for i := rank; i < m; i++ {
		if e.R.Get(i, n) {
			return Result{OK: false}
		}
	}

	isPivot := make([]bool, n)
	for _, col := range e.PivotCols {
		isPivot[col] = true
	}
	// non-pivot columns in reliability order (most suspicious first)
	nonPivot := make([]int, 0, n-rank)
	for _, col := range order {
		if !isPivot[col] {
			nonPivot = append(nonPivot, col)
		}
	}

	// base pivot solution: e_P[i] = s̃[i]
	words := (rank + 63) / 64
	base := make([]uint64, words)
	for i := 0; i < rank; i++ {
		if e.R.Get(i, n) {
			base[i/64] |= 1 << (uint(i) % 64)
		}
	}

	build := func(pivotBits []uint64, pattern []int) gf2.Vec {
		out := gf2.NewVec(n)
		for i, col := range e.PivotCols {
			if pivotBits[i/64]>>(uint(i)%64)&1 == 1 {
				out.Set(col, true)
			}
		}
		for _, col := range pattern {
			out.Set(col, true)
		}
		return out
	}

	if d.cfg.Method == OSD0 || len(nonPivot) == 0 {
		sol := build(base, nil)
		return Result{OK: true, ErrHat: sol, Weight: sol.Weight(), Patterns: 1}
	}

	// 3. cache the RREF restricted to pivot rows, per non-pivot column
	colBits := make(map[int][]uint64, len(nonPivot))
	for _, col := range nonPivot {
		colBits[col] = make([]uint64, words)
	}
	for i := 0; i < rank; i++ {
		for _, j := range e.R.Row(i).Support() {
			if j < n && !isPivot[j] {
				colBits[j][i/64] |= 1 << (uint(i) % 64)
			}
		}
	}

	popcount := func(w []uint64) int {
		c := 0
		for _, x := range w {
			c += bits.OnesCount64(x)
		}
		return c
	}

	bestBits := base
	bestPattern := []int(nil)
	bestWeight := popcount(base)
	patterns := 1
	scratch := make([]uint64, words)

	try := func(pattern []int) {
		copy(scratch, base)
		for _, col := range pattern {
			cb := colBits[col]
			for w := range scratch {
				scratch[w] ^= cb[w]
			}
		}
		patterns++
		if w := popcount(scratch) + len(pattern); w < bestWeight {
			bestWeight = w
			bestBits = append([]uint64(nil), scratch...)
			bestPattern = append([]int(nil), pattern...)
		}
	}

	switch d.cfg.Method {
	case OSDE:
		// all subsets of the first Order non-pivot columns
		depth := minInt(d.cfg.Order, len(nonPivot))
		for mask := 1; mask < 1<<uint(depth); mask++ {
			var pattern []int
			for b := 0; b < depth; b++ {
				if mask>>uint(b)&1 == 1 {
					pattern = append(pattern, nonPivot[b])
				}
			}
			try(pattern)
		}
	case OSDCS:
		// weight-1 over the full non-pivot block
		for _, col := range nonPivot {
			try([]int{col})
		}
		// weight-2 within the first Order columns
		depth := minInt(d.cfg.Order, len(nonPivot))
		for a := 0; a < depth; a++ {
			for b := a + 1; b < depth; b++ {
				try([]int{nonPivot[a], nonPivot[b]})
			}
		}
	}

	sol := build(bestBits, bestPattern)
	return Result{OK: true, ErrHat: sol, Weight: sol.Weight(), Patterns: patterns}
}

func colVec(b gf2.Vec) *gf2.Mat {
	m := gf2.NewMat(b.Len(), 1)
	for _, i := range b.Support() {
		m.Set(i, 0, true)
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
