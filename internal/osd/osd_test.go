package osd

import (
	"math/rand"
	"testing"

	"bpsf/internal/codes"
	"bpsf/internal/gf2"
	"bpsf/internal/sparse"
)

// neutralLLR returns a flat reliability vector (no BP information).
func neutralLLR(n int) []float64 {
	llr := make([]float64, n)
	for i := range llr {
		llr[i] = 1.0
	}
	return llr
}

func TestOSD0SolvesSyndrome(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	c, err := codes.BB72()
	if err != nil {
		t.Fatal(err)
	}
	d := New(c.HZ, Config{Method: OSD0})
	for trial := 0; trial < 20; trial++ {
		e := gf2.NewVec(c.N)
		for k := 0; k < 1+r.Intn(5); k++ {
			e.Set(r.Intn(c.N), true)
		}
		s := c.SyndromeOfX(e)
		res := d.Decode(s, neutralLLR(c.N))
		if !res.OK {
			t.Fatal("consistent syndrome reported unsolvable")
		}
		if !c.SyndromeOfX(res.ErrHat).Equal(s) {
			t.Fatal("OSD-0 solution does not satisfy syndrome")
		}
		if res.Patterns != 1 {
			t.Fatalf("OSD-0 tried %d patterns", res.Patterns)
		}
	}
}

func TestOSDReliabilityGuides(t *testing.T) {
	// with oracle LLRs (true error bits marked unreliable), OSD-0 must
	// recover exactly the injected error
	r := rand.New(rand.NewSource(71))
	c, err := codes.BB72()
	if err != nil {
		t.Fatal(err)
	}
	d := New(c.HZ, Config{Method: OSD0})
	for trial := 0; trial < 20; trial++ {
		e := gf2.NewVec(c.N)
		for k := 0; k < 3; k++ {
			e.Set(r.Intn(c.N), true)
		}
		llr := make([]float64, c.N)
		for i := range llr {
			if e.Get(i) {
				llr[i] = -5 // certain error
			} else {
				llr[i] = +5
			}
		}
		res := d.Decode(c.SyndromeOfX(e), llr)
		if !res.OK || !res.ErrHat.Equal(e) {
			t.Fatalf("oracle OSD-0 failed to recover the error (trial %d)", trial)
		}
	}
}

func TestOSDCSNeverWorseThanOSD0(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	c, err := codes.BB144()
	if err != nil {
		t.Fatal(err)
	}
	d0 := New(c.HZ, Config{Method: OSD0})
	dcs := New(c.HZ, Config{Method: OSDCS, Order: 10})
	for trial := 0; trial < 10; trial++ {
		e := gf2.NewVec(c.N)
		for k := 0; k < 4; k++ {
			e.Set(r.Intn(c.N), true)
		}
		// mildly-informative noisy LLRs
		llr := make([]float64, c.N)
		for i := range llr {
			llr[i] = r.Float64()*4 - 1
		}
		s := c.SyndromeOfX(e)
		r0 := d0.Decode(s, llr)
		rcs := dcs.Decode(s, llr)
		if !r0.OK || !rcs.OK {
			t.Fatal("decode failed")
		}
		if !c.SyndromeOfX(rcs.ErrHat).Equal(s) {
			t.Fatal("OSD-CS solution does not satisfy syndrome")
		}
		if rcs.Weight > r0.Weight {
			t.Fatalf("OSD-CS weight %d worse than OSD-0 weight %d", rcs.Weight, r0.Weight)
		}
		if rcs.Patterns <= 1 {
			t.Fatal("OSD-CS swept no patterns")
		}
	}
}

func TestOSDEExhaustiveSmall(t *testing.T) {
	// tiny code where we can brute-force the minimum-weight solution
	h := sparse.FromRows([][]int{
		{1, 1, 0, 0, 1},
		{0, 1, 1, 1, 0},
		{1, 0, 1, 0, 1},
	})
	d := New(h, Config{Method: OSDE, Order: 2})
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		e := gf2.NewVec(5)
		for k := 0; k < 1+r.Intn(2); k++ {
			e.Set(r.Intn(5), true)
		}
		s := h.MulVec(e)
		res := d.Decode(s, neutralLLR(5))
		if !res.OK {
			t.Fatal("unsolvable")
		}
		if !h.MulVec(res.ErrHat).Equal(s) {
			t.Fatal("syndrome not satisfied")
		}
	}
}

func TestOSDInconsistentSyndrome(t *testing.T) {
	// rank-deficient H: duplicate rows; make a syndrome outside the column
	// space
	h := sparse.FromRows([][]int{
		{1, 1, 0},
		{1, 1, 0},
	})
	d := New(h, Config{Method: OSDCS, Order: 2})
	s := gf2.VecFromInts([]int{1, 0}) // rows identical, bits differ ⇒ impossible
	if res := d.Decode(s, neutralLLR(3)); res.OK {
		t.Fatal("inconsistent syndrome reported solvable")
	}
	// consistent syndrome still fine
	if res := d.Decode(gf2.VecFromInts([]int{1, 1}), neutralLLR(3)); !res.OK {
		t.Fatal("consistent syndrome rejected")
	}
}

func TestOSDZeroSyndrome(t *testing.T) {
	c, err := codes.BB72()
	if err != nil {
		t.Fatal(err)
	}
	d := New(c.HZ, Config{Method: OSDCS, Order: 4})
	res := d.Decode(gf2.NewVec(c.HZ.Rows()), neutralLLR(c.N))
	if !res.OK || res.Weight != 0 {
		t.Fatalf("zero syndrome should give weight-0 solution, got weight %d", res.Weight)
	}
}

func TestMethodString(t *testing.T) {
	if OSD0.String() != "OSD-0" || OSDE.String() != "OSD-E" || OSDCS.String() != "OSD-CS" || Method(9).String() != "OSD-?" {
		t.Fatal("Method.String wrong")
	}
}
