package main

import (
	"reflect"
	"testing"

	"bpsf/internal/fleet"
)

// TestParseBackends is the table-driven -backend validation: repeated
// flags and comma-separated lists both parse, names must be unique, and
// malformed pairs error naming the expected shape.
func TestParseBackends(t *testing.T) {
	cases := []struct {
		name    string
		in      []string
		want    []fleet.BackendAddr
		wantErr bool
	}{
		{
			name: "repeated flags",
			in:   []string{"b0=h0:7421", "b1=h1:7421"},
			want: []fleet.BackendAddr{{Name: "b0", Addr: "h0:7421"}, {Name: "b1", Addr: "h1:7421"}},
		},
		{
			name: "comma-separated in one flag",
			in:   []string{"b0=h0:7421,b1=h1:7421"},
			want: []fleet.BackendAddr{{Name: "b0", Addr: "h0:7421"}, {Name: "b1", Addr: "h1:7421"}},
		},
		{
			name: "spaces and empty elements tolerated",
			in:   []string{" b0=h0:7421 ,, b1=h1:7421 "},
			want: []fleet.BackendAddr{{Name: "b0", Addr: "h0:7421"}, {Name: "b1", Addr: "h1:7421"}},
		},
		{name: "no backends at all", in: nil, wantErr: true},
		{name: "only empty elements", in: []string{",,"}, wantErr: true},
		{name: "missing separator", in: []string{"b0"}, wantErr: true},
		{name: "empty name", in: []string{"=h0:7421"}, wantErr: true},
		{name: "empty addr", in: []string{"b0="}, wantErr: true},
		{name: "duplicate name across flags", in: []string{"b0=h0:7421", "b0=h1:7421"}, wantErr: true},
		{name: "duplicate name within one flag", in: []string{"b0=h0:7421,b0=h1:7421"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseBackends(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted %v as %v", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}
