// Command bpsf-gateway fronts a fleet of bpsf-serve backends with one
// client-facing decode endpoint. It speaks the same length-prefixed
// protocol on both sides: sessions are routed by rendezvous-hashing
// their decode identity (code, rounds, p, spec, W, C) so identical
// workloads share warm pools, every client frame is journaled before it
// is forwarded, and when a backend dies mid-session the gateway replays
// the journal onto the next-ranked healthy backend — the determinism
// contract makes the resumed stream byte-identical, and the gateway
// asserts that per reply plane (DESIGN.md §12).
//
// Usage:
//
//	bpsf-gateway -listen :7430 -backend b0=10.0.0.1:7421 -backend b1=10.0.0.2:7421
//	bpsf-gateway -listen :7430 -backend b0=h0:7421,b1=h1:7421 -admin :7431
//
// SIGINT/SIGTERM drains: the listener closes, live sessions get the
// grace period, then force-close. SIGUSR1 dumps the merged fleet
// telemetry snapshot to stderr. -admin serves Prometheus /metrics with
// per-backend bpsf_backend_* families, JSON /statusz and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bpsf/internal/fleet"
)

// parseBackends resolves the repeated -backend flag values: each is one
// or more comma-separated name=addr pairs. Names must be unique; both
// halves must be non-empty.
func parseBackends(vals []string) ([]fleet.BackendAddr, error) {
	seen := make(map[string]bool)
	var out []fleet.BackendAddr
	for _, v := range vals {
		for _, pair := range strings.Split(v, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			name, addr, ok := strings.Cut(pair, "=")
			if !ok || name == "" || addr == "" {
				return nil, fmt.Errorf("bad -backend %q (want name=host:port)", pair)
			}
			if seen[name] {
				return nil, fmt.Errorf("duplicate backend name %q", name)
			}
			seen[name] = true
			out = append(out, fleet.BackendAddr{Name: name, Addr: addr})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends: pass at least one -backend name=host:port")
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-gateway: ")
	listen := flag.String("listen", ":7430", "client-facing listen address")
	admin := flag.String("admin", "", "admin/telemetry HTTP listen address serving /metrics, /statusz and /debug/pprof (empty = off)")
	var backendVals []string
	flag.Func("backend", "backend as name=addr (host:port, unix:<path>, or a socket path; repeatable or comma-separated)", func(v string) error {
		backendVals = append(backendVals, v)
		return nil
	})
	windowRounds := flag.Int("window", 3, "stream window size in the session routing key (match the backends')")
	commitRounds := flag.Int("commit", 1, "committed rounds per window in the routing key (match the backends')")
	maxSessions := flag.Int("max-sessions", 64, "session cap per backend; full backends are skipped in the ranking")
	maxJournal := flag.Int("max-journal", 8<<20, "replay journal cap per session in bytes; beyond it a session survives but cannot fail over")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "backend health probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "backend health probe round-trip bound")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "session grace period on shutdown")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop a session whose client sends nothing for this long (client hop only; 0 = never)")
	writeTimeout := flag.Duration("write-timeout", 0, "drop a session whose client stops reading replies (per frame write; 0 = never)")
	quiet := flag.Bool("quiet", false, "suppress per-session and failover log lines")
	flag.Parse()

	backends, err := parseBackends(backendVals)
	if err != nil {
		log.Fatal(err)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	if *commitRounds < 1 || *commitRounds > *windowRounds {
		log.Fatalf("need 1 ≤ -commit ≤ -window, got -window %d -commit %d", *windowRounds, *commitRounds)
	}
	gw, err := fleet.NewGateway(fleet.GatewayOptions{
		Backends:              backends,
		StreamWindow:          *windowRounds,
		StreamCommit:          *commitRounds,
		MaxSessionsPerBackend: *maxSessions,
		MaxJournalBytes:       *maxJournal,
		ProbeInterval:         *probeInterval,
		ProbeTimeout:          *probeTimeout,
		IdleTimeout:           *idleTimeout,
		WriteTimeout:          *writeTimeout,
		Logf:                  logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gw.Listen(*listen); err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d backend(s) on %s (window=%d commit=%d max-sessions=%d)",
		len(backends), gw.Addr(), *windowRounds, *commitRounds, *maxSessions)
	for _, b := range backends {
		log.Printf("  backend %s = %s", b.Name, b.Addr)
	}
	if *admin != "" {
		adminAddr, err := gw.ServeAdmin(*admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("admin plane on http://%s (/metrics /statusz /debug/pprof)", adminAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	sig := waitSignals(sigs, func() { gw.Snapshot().WriteText(os.Stderr) })
	log.Printf("%v: draining (grace %v)", sig, *drainGrace)
	gw.Drain(*drainGrace)
	gw.Snapshot().WriteText(os.Stdout)
}

// waitSignals blocks until a terminating signal arrives, invoking onDump
// for each SIGUSR1 along the way (the live fleet-stats dump; service is
// not disturbed).
func waitSignals(sigs <-chan os.Signal, onDump func()) os.Signal {
	for sig := range sigs {
		if sig == syscall.SIGUSR1 {
			onDump()
			continue
		}
		return sig
	}
	return nil
}
