// Command bpsf-figs regenerates the paper's tables and figures. Each
// experiment prints the rows the paper reports and writes its series as
// CSV into the data directory.
//
// Usage:
//
//	bpsf-figs -list
//	bpsf-figs -exp fig07 -shots 500
//	bpsf-figs -exp all -out data
//	bpsf-figs -exp fig07 -full          # paper-scale rounds and grids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bpsf/internal/experiments"
	"bpsf/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-figs: ")
	exp := flag.String("exp", "", "experiment name, comma list, or 'all'")
	list := flag.Bool("list", false, "list experiment names")
	shots := flag.Int("shots", 0, "shots per point (0 = per-figure default)")
	seed := flag.Int64("seed", 0, "sampler seed (0 = default)")
	full := flag.Bool("full", false, "paper-scale rounds and error-rate grids (slow)")
	decoder := flag.String("decoder", "",
		"restrict decoder-grid experiments to one kind of "+fmt.Sprint(sim.DecoderNames())+" (empty = full grids; windowed wrappers match their inner kind)")
	outDir := flag.String("out", "data", "CSV output directory")
	workers := flag.Int("workers", runtime.NumCPU(),
		"parallelism across grid cells and Monte-Carlo shards (results are identical for any value)")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		log.Fatal("missing -exp (try -list)")
	}
	if err := validateDecoder(*decoder); err != nil {
		log.Fatal(err)
	}
	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = experiments.Names()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	opts := experiments.Opts{Shots: *shots, Seed: *seed, Full: *full, Out: os.Stdout, Workers: *workers, Decoder: *decoder}
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		res, err := experiments.Run(name, opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if res.Notes != "" {
			fmt.Printf("   note: %s\n", res.Notes)
		}
		path := filepath.Join(*outDir, res.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.WriteCSV(f, res.Series...); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   wrote %s  [%v]\n\n", path, time.Since(t0).Round(time.Millisecond))
	}
}

// validateDecoder checks the -decoder filter against the constructor
// registry; unknown names report the available set (the CLI exits
// non-zero on the returned error).
func validateDecoder(name string) error {
	return experiments.ValidDecoderName(name)
}
