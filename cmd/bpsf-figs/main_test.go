package main

import (
	"strings"
	"testing"

	"bpsf/internal/sim"
)

// TestValidateDecoderFlag is the table-driven -decoder validation for
// bpsf-figs: every registered name (and the empty no-filter default) is
// accepted, unknown names fail with an error naming the available set (the
// CLI turns that into a non-zero exit via log.Fatal).
func TestValidateDecoderFlag(t *testing.T) {
	cases := []struct {
		name    string
		decoder string
		wantErr bool
	}{
		{"empty-no-filter", "", false},
		{"bp", "bp", false},
		{"bposd", "bposd", false},
		{"bpsf", "bpsf", false},
		{"uf", "uf", false},
		{"windowed", "windowed", false},
		{"unknown", "matching", true},
		{"case-sensitive", "UF", true},
		{"whitespace", " uf", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateDecoder(tc.decoder)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoder %q accepted", tc.decoder)
				}
				for _, known := range sim.DecoderNames() {
					if !strings.Contains(err.Error(), known) {
						t.Errorf("error %q does not name available decoder %q", err, known)
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDecoderFlagMatchesRegistry pins the flag vocabulary to the registry:
// a decoder added to sim.Constructors must be accepted by this CLI's
// filter.
func TestDecoderFlagMatchesRegistry(t *testing.T) {
	for _, name := range sim.DecoderNames() {
		if err := validateDecoder(name); err != nil {
			t.Errorf("registered decoder %q rejected: %v", name, err)
		}
	}
}
