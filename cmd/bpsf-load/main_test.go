package main

import (
	"strings"
	"testing"

	"bpsf/internal/service"
	"bpsf/internal/sim"
)

// TestBatchFlagValues is the table-driven -batch validation (mirroring the
// -decoder pattern): accepted values select server-side batch sampling or
// the retained client-side scalar path, anything else fails with an error
// naming the accepted set — the CLI exits non-zero via log.Fatal before
// dialing.
func TestBatchFlagValues(t *testing.T) {
	cases := []struct {
		value   string
		want    bool
		wantErr bool
	}{
		{"on", true, false},
		{"off", false, false},
		{"true", true, false},
		{"false", false, false},
		{"1", true, false},
		{"0", false, false},
		{"", false, true},
		{"16", false, true}, // the old -batch size now lives in -batch-size
		{"On", false, true}, // case-sensitive, like -decoder
	}
	for _, tc := range cases {
		t.Run("value="+tc.value, func(t *testing.T) {
			got, err := sim.ParseBatchFlag(tc.value)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("-batch %q accepted", tc.value)
				}
				if !strings.Contains(err.Error(), "on|off") {
					t.Errorf("error %q does not print the accepted set", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("-batch %q = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}

// TestDecoderFlagMatchesServiceKinds pins this CLI's -decoder vocabulary
// to the service spec kinds.
func TestDecoderFlagMatchesServiceKinds(t *testing.T) {
	for _, kind := range service.SpecKinds() {
		spec := service.Spec{Kind: kind, BPIters: 10, Phi: 2, WMax: 1}
		if err := spec.Validate(); err != nil {
			t.Errorf("service kind %q rejected by Validate: %v", kind, err)
		}
	}
}
