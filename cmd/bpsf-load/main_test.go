package main

import (
	"strings"
	"testing"

	"bpsf/internal/bench"
	"bpsf/internal/service"
	"bpsf/internal/sim"
)

// TestBatchFlagValues is the table-driven -batch validation (mirroring the
// -decoder pattern): accepted values select server-side batch sampling or
// the retained client-side scalar path, anything else fails with an error
// naming the accepted set — the CLI exits non-zero via log.Fatal before
// dialing.
func TestBatchFlagValues(t *testing.T) {
	cases := []struct {
		value   string
		want    bool
		wantErr bool
	}{
		{"on", true, false},
		{"off", false, false},
		{"true", true, false},
		{"false", false, false},
		{"1", true, false},
		{"0", false, false},
		{"", false, true},
		{"16", false, true}, // the old -batch size now lives in -batch-size
		{"On", false, true}, // case-sensitive, like -decoder
	}
	for _, tc := range cases {
		t.Run("value="+tc.value, func(t *testing.T) {
			got, err := sim.ParseBatchFlag(tc.value)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("-batch %q accepted", tc.value)
				}
				if !strings.Contains(err.Error(), "on|off") {
					t.Errorf("error %q does not print the accepted set", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("-batch %q = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}

// TestProfileFlagValidation is the -profile validation, matching the
// -decoder convention: unknown names make the CLI exit non-zero (via
// log.Fatal on this error) printing the available profile set.
func TestProfileFlagValidation(t *testing.T) {
	if _, err := bench.GetProfile("edge-rsurf5-uf"); err != nil {
		t.Errorf("known profile rejected: %v", err)
	}
	_, err := bench.GetProfile("nope")
	if err == nil {
		t.Fatal("-profile nope accepted")
	}
	for _, name := range bench.ProfileNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not print available profile %q", err, name)
		}
	}
}

// TestApplyProfilePrecedence pins the merge rule: every profile field
// lands in its flag unless that flag was set explicitly, in which case
// the explicit value wins.
func TestApplyProfilePrecedence(t *testing.T) {
	prof, err := bench.GetProfile("bulk-bb72-bposd")
	if err != nil {
		t.Fatal(err)
	}
	codeName, decoder, batch, mode := "bb144", "bpsf", "on", "closed"
	rounds, bpIters, osdOrder, phi, wmax, ns := 0, 100, 10, 50, 10, 10
	batchSize, sessions, shots, window, commit := 16, 4, 1000, 0, 1
	p, rate := 0.003, 500.0
	v := profileFlags{
		code: &codeName, rounds: &rounds, p: &p, decoder: &decoder,
		bpIters: &bpIters, osdOrder: &osdOrder, phi: &phi, wmax: &wmax, ns: &ns,
		batch: &batch, batchSize: &batchSize, sessions: &sessions, shots: &shots,
		mode: &mode, rate: &rate, window: &window, commit: &commit,
	}

	explicit := map[string]bool{"shots": true, "p": true}
	shots, p = 9999, 1e-4 // what the user typed
	applyProfile(prof, func(name string) bool { return explicit[name] }, v)

	if codeName != prof.Code || decoder != prof.Spec.Kind || bpIters != prof.Spec.BPIters ||
		osdOrder != prof.Spec.OSDOrder || batchSize != prof.BatchSize || sessions != prof.Sessions ||
		mode != prof.Mode || window != prof.Window {
		t.Errorf("profile fields not applied: code %s decoder %s bp-iters %d osd %d batch-size %d sessions %d mode %s window %d",
			codeName, decoder, bpIters, osdOrder, batchSize, sessions, mode, window)
	}
	if batch != "on" {
		t.Errorf("server-sampled profile set -batch %q, want on", batch)
	}
	if shots != 9999 || p != 1e-4 {
		t.Errorf("explicit flags overridden: shots %d, p %g", shots, p)
	}

	// a streaming profile presets the window/commit plane
	stream, err := bench.GetProfile("stream-rsurf5-uf")
	if err != nil {
		t.Fatal(err)
	}
	applyProfile(stream, func(string) bool { return false }, v)
	if window != stream.Window || commit != stream.Commit || batch != "off" {
		t.Errorf("streaming profile applied window %d commit %d batch %q", window, commit, batch)
	}
}

// TestDecoderFlagMatchesServiceKinds pins this CLI's -decoder vocabulary
// to the service spec kinds.
func TestDecoderFlagMatchesServiceKinds(t *testing.T) {
	for _, kind := range service.SpecKinds() {
		spec := service.Spec{Kind: kind, BPIters: 10, Phi: 2, WMax: 1}
		if err := spec.Validate(); err != nil {
			t.Errorf("service kind %q rejected by Validate: %v", kind, err)
		}
	}
}
