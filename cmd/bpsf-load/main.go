// Command bpsf-load drives a bpsf-serve instance with synthetic syndrome
// traffic and reports throughput and latency percentiles. Closed-loop mode
// keeps a fixed number of sessions each with one batch in flight (the
// classic saturation probe); open-loop mode submits batches at a fixed
// arrival rate regardless of completions, which is what exposes queueing
// delay and shedding under overload.
//
// Batch traffic samples server-side by default (-batch on): requests carry
// only a shot count and the server draws syndromes from its word-parallel
// batch frame sampler, so the wire and the client pay nothing for syndrome
// generation and responses report logical failures against the sampled
// ground truth. -batch off retains the client-side scalar sampler and
// uploads packed syndromes (the differential baseline).
//
// Usage:
//
//	bpsf-load -addr 127.0.0.1:7421 -code bb144 -p 0.003 -shots 10000 -sessions 8
//	bpsf-load -addr 127.0.0.1:7421 -mode open -rate 2000 -deadline 5ms -shots 20000
//	bpsf-load -addr 127.0.0.1:7421 -code bb72 -batch off -batch-size 32
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"bpsf/internal/code"
	"bpsf/internal/codes"
	"bpsf/internal/decoding"
	"bpsf/internal/dem"
	"bpsf/internal/gf2"
	"bpsf/internal/memexp"
	"bpsf/internal/service"
	"bpsf/internal/sim"
	"bpsf/internal/window"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-load: ")
	addr := flag.String("addr", "127.0.0.1:7421", "server address")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default)")
	p := flag.Float64("p", 0.003, "physical error rate")
	decoder := flag.String("decoder", "bpsf", "decoder: "+fmt.Sprint(service.SpecKinds()))
	bpIters := flag.Int("bp-iters", 100, "BP iteration cap")
	osdOrder := flag.Int("osd-order", 10, "OSD-CS order (bposd)")
	phi := flag.Int("phi", 50, "BP-SF candidate set size |Φ|")
	wmax := flag.Int("wmax", 10, "BP-SF maximum trial weight")
	ns := flag.Int("ns", 10, "BP-SF sampled trials per weight (0 = exhaustive)")
	sessions := flag.Int("sessions", 4, "concurrent sessions")
	shots := flag.Int("shots", 1000, "total syndromes across all sessions")
	batchSize := flag.Int("batch-size", 16, "syndromes per request batch")
	batch := flag.String("batch", "on",
		"server-side bit-packed 64-shot batch sampling: on | off (off = retained client-side scalar sampling + syndrome upload; ignored in -window streaming mode)")
	mode := flag.String("mode", "closed", "load model: closed | open")
	rate := flag.Float64("rate", 500, "total batch arrivals per second (open mode)")
	seed := flag.Int64("seed", 1, "sampler and stream seed base")
	deadline := flag.Duration("deadline", 0, "server queue deadline (0 = backpressure, never shed)")
	maxShed := flag.Int("max-shed", -1, "exit nonzero when more responses were shed (-1 = no check)")
	windowRounds := flag.Int("window", 0,
		"streaming mode: open windowed decode streams of this many rounds instead of batches (0 = batch mode)")
	commitRounds := flag.Int("commit", 1, "committed rounds per stream window (streaming mode)")
	replay := flag.Bool("replay", false,
		"streaming mode: replay the first recorded round stream and require byte-identical commits (library + service)")
	flag.Parse()

	useBatch, err := sim.ParseBatchFlag(*batch)
	if err != nil {
		log.Fatal(err)
	}
	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	r := *rounds
	if r == 0 {
		r = entry.Rounds
	}
	spec := service.Spec{Kind: *decoder, BPIters: *bpIters, OSDOrder: *osdOrder,
		Phi: *phi, WMax: *wmax, NS: *ns}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	// Local model build only when this side samples: scalar batch mode and
	// streaming both generate syndromes client-side (the generator owns its
	// syndrome source so the server is measured on decoding alone). The
	// default server-sampled batch mode skips the DEM extraction entirely —
	// the server already owns that build.
	var css *code.CSS
	var d *dem.DEM
	if !useBatch || *windowRounds > 0 {
		var err error
		css, err = entry.Build()
		if err != nil {
			log.Fatal(err)
		}
		circ, err := memexp.Build(css, r, memexp.Uniform())
		if err != nil {
			log.Fatal(err)
		}
		d, err = dem.Extract(circ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, %d rounds, %d mechanisms, p=%g, decoder %s\n", css.Name, r, d.NumMechs(), *p, spec)
	} else {
		fmt.Printf("%s, %d rounds, p=%g, decoder %s (server-side sampling)\n", entry.Name, r, *p, spec)
	}

	if *windowRounds > 0 {
		runStreamLoad(streamLoadConfig{
			addr: *addr, codeName: *codeName, rounds: r, p: *p, spec: spec,
			window: *windowRounds, commit: *commitRounds,
			sessions: *sessions, streams: *shots, mode: *mode, rate: *rate,
			seed: *seed, deadline: *deadline, replay: *replay, maxShed: *maxShed,
			css: css, d: d,
		})
		return
	}
	sampling := "server-side batch sampling"
	if !useBatch {
		sampling = "client-side scalar sampling"
	}
	fmt.Printf("%s-loop: %d sessions, %d shots, batch %d, %s\n",
		*mode, *sessions, *shots, *batchSize, sampling)

	perSession := (*shots + *sessions - 1) / *sessions
	var interval time.Duration
	if *mode == "open" {
		if *rate <= 0 {
			log.Fatal("-mode open needs -rate > 0")
		}
		// per-session batch arrival interval; sessions are staggered by Dial
		// time so total arrivals approximate -rate
		interval = time.Duration(float64(*sessions) * float64(*batchSize) / *rate * float64(time.Second))
	} else if *mode != "closed" {
		log.Fatalf("unknown mode %q (want closed|open)", *mode)
	}

	var mu sync.Mutex
	var serverLat, clientLat []time.Duration
	var decoded, shed, failures, logical int
	record := func(rtt time.Duration, resps []service.Response) {
		mu.Lock()
		defer mu.Unlock()
		clientLat = append(clientLat, rtt)
		for _, resp := range resps {
			if resp.Shed {
				shed++
				continue
			}
			decoded++
			serverLat = append(serverLat, resp.Latency)
			if !resp.Success {
				failures++
			}
			if resp.Failed {
				logical++
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, *sessions)
	t0 := time.Now()
	for s := 0; s < *sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := service.Hello{
				Code: *codeName, Rounds: r, P: *p,
				StreamSeed: *seed + int64(s)*1000,
				Deadline:   *deadline,
				Spec:       spec,
			}
			c, err := service.Dial(*addr, h)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", s, err)
				return
			}
			defer c.Close()
			// -batch on: the server samples via its word-parallel frame
			// sampler (SubmitSample) — no syndrome bytes go upstream.
			// -batch off: the retained client-side scalar path.
			var sampler *dem.Sampler
			var buf []gf2.Vec
			if !useBatch {
				sampler = dem.NewSampler(d, *p, *seed+int64(s))
				buf = make([]gf2.Vec, *batchSize)
				for i := range buf {
					buf[i] = gf2.NewVec(d.NumDets)
				}
			}
			var pending sync.WaitGroup
			next := time.Now()
			for sent := 0; sent < perSession; {
				n := *batchSize
				if perSession-sent < n {
					n = perSession - sent
				}
				if !useBatch {
					for i := 0; i < n; i++ {
						syn, _ := sampler.SampleShared()
						buf[i].CopyFrom(syn)
					}
				}
				if interval > 0 {
					// open loop: hold the schedule even when responses lag
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				sendT := time.Now()
				var pend *service.Pending
				var err error
				if useBatch {
					pend, err = c.SubmitSample(n)
				} else {
					pend, err = c.Submit(buf[:n])
				}
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", s, err)
					return
				}
				sent += n
				if interval > 0 {
					pending.Add(1)
					go func() {
						defer pending.Done()
						if resps, err := pend.Wait(); err == nil {
							record(time.Since(sendT), resps)
						}
					}()
				} else {
					resps, err := pend.Wait()
					if err != nil {
						errs <- fmt.Errorf("session %d: %w", s, err)
						return
					}
					record(time.Since(sendT), resps)
				}
			}
			pending.Wait()
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	tput := float64(decoded) / wall.Seconds()
	fmt.Printf("\n%d decoded, %d shed, %d decode failures in %v  →  %.0f syndromes/s\n",
		decoded, shed, failures, wall.Round(time.Millisecond), tput)
	if useBatch && decoded > 0 {
		fmt.Printf("%d logical failures among the server-sampled shots (LER %.2e)\n",
			logical, float64(logical)/float64(decoded))
	}

	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	srv := sim.Summarize(serverLat)
	cli := sim.Summarize(clientLat)
	tb := sim.NewTable("latency", "n", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	tb.Row("server (queue+decode)", srv.N, ms(srv.P50), ms(srv.P95), ms(srv.P99), ms(srv.P999), ms(srv.Max))
	tb.Row("client batch RTT", cli.N, ms(cli.P50), ms(cli.P95), ms(cli.P99), ms(cli.P999), ms(cli.Max))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *maxShed >= 0 && shed > *maxShed {
		log.Fatalf("shed %d responses, budget %d", shed, *maxShed)
	}
}

// ---- streaming mode ----

type streamLoadConfig struct {
	addr, codeName string
	rounds         int
	p              float64
	spec           service.Spec
	window, commit int
	sessions       int
	streams        int // total streams across sessions (one multi-round shot each)
	mode           string
	rate           float64 // total round arrivals/s (open mode)
	seed           int64
	deadline       time.Duration
	replay         bool
	maxShed        int
	css            *code.CSS
	d              *dem.DEM
}

// splitRounds slices a full multi-round syndrome into per-round vectors
// along the stream's advertised layout.
func splitRounds(s gf2.Vec, detsPerRound []int) []gf2.Vec {
	out := make([]gf2.Vec, len(detsPerRound))
	off := 0
	for ri, nd := range detsPerRound {
		v := gf2.NewVec(nd)
		for i := 0; i < nd; i++ {
			if s.Get(off + i) {
				v.Set(i, true)
			}
		}
		out[ri] = v
		off += nd
	}
	return out
}

// runStreamLoad drives the windowed stream plane: every "shot" is a full
// multi-round syndrome stream pushed round by round (open loop paces round
// arrivals at -rate regardless of commit completions), reporting
// per-commit latency percentiles — server-side (round arrival → commit)
// and client-observed (last needed round sent → commit received). Streams
// never shed; the -max-shed gate therefore passes iff the run completes.
func runStreamLoad(cfg streamLoadConfig) {
	fmt.Printf("%s-loop streaming: %d sessions, %d streams, window %d commit %d\n",
		cfg.mode, cfg.sessions, cfg.streams, cfg.window, cfg.commit)
	var interval time.Duration
	if cfg.mode == "open" {
		if cfg.rate <= 0 {
			log.Fatal("-mode open needs -rate > 0")
		}
		interval = time.Duration(float64(cfg.sessions) / cfg.rate * float64(time.Second))
	} else if cfg.mode != "closed" {
		log.Fatalf("unknown mode %q (want closed|open)", cfg.mode)
	}
	perSession := (cfg.streams + cfg.sessions - 1) / cfg.sessions

	var mu sync.Mutex
	var serverLat, clientLat []time.Duration
	var windows, streamFails, streamsRun int
	var recordedRounds []gf2.Vec // session 0, stream 0 (for -replay)
	var recordedHat []byte

	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	t0 := time.Now()
	for s := 0; s < cfg.sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := service.Hello{
				Code: cfg.codeName, Rounds: cfg.rounds, P: cfg.p,
				StreamSeed: cfg.seed + int64(s)*1000,
				Deadline:   cfg.deadline,
				Spec:       cfg.spec,
			}
			c, err := service.Dial(cfg.addr, h)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", s, err)
				return
			}
			defer c.Close()
			sampler := dem.NewSampler(cfg.d, cfg.p, cfg.seed+int64(s))
			next := time.Now()
			for shot := 0; shot < perSession; shot++ {
				st, err := c.OpenStream(cfg.window, cfg.commit)
				if err != nil {
					errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
					return
				}
				dets := make([]int, st.NumRounds())
				for ri := range dets {
					dets[ri] = st.RoundDets(ri)
				}
				syn, _ := sampler.SampleShared()
				rounds := splitRounds(syn, dets)
				spans := st.Spans()

				var sendMu sync.Mutex
				sendT := make([]time.Time, len(rounds))
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						cm, err := st.NextCommit()
						if err != nil {
							return
						}
						recvT := time.Now()
						lastRound := spans[cm.Window].End - 1
						sendMu.Lock()
						sent := sendT[lastRound]
						sendMu.Unlock()
						mu.Lock()
						serverLat = append(serverLat, cm.Latency)
						clientLat = append(clientLat, recvT.Sub(sent))
						windows++
						mu.Unlock()
						if cm.Final {
							return
						}
					}
				}()
				for ri, rv := range rounds {
					if interval > 0 {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						next = next.Add(interval)
					}
					sendMu.Lock()
					sendT[ri] = time.Now()
					sendMu.Unlock()
					if err := st.SendRounds([]gf2.Vec{rv}); err != nil {
						errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
						return
					}
				}
				<-done
				res, err := st.Finish()
				if err != nil {
					errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
					return
				}
				mu.Lock()
				streamsRun++
				if !res.Success {
					streamFails++
				}
				if s == 0 && shot == 0 {
					recordedRounds = rounds
					recordedHat = res.ErrHat.AppendBytes(nil)
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	fmt.Printf("\n%d streams (%d windows committed), %d stream failures, 0 shed in %v  →  %.0f windows/s\n",
		streamsRun, windows, streamFails, wall.Round(time.Millisecond),
		float64(windows)/wall.Seconds())
	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	srv := sim.Summarize(serverLat)
	cli := sim.Summarize(clientLat)
	tb := sim.NewTable("per-commit latency", "n", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	tb.Row("server (arrival→commit)", srv.N, ms(srv.P50), ms(srv.P95), ms(srv.P99), ms(srv.P999), ms(srv.Max))
	tb.Row("client (send→commit)", cli.N, ms(cli.P50), ms(cli.P95), ms(cli.P99), ms(cli.P999), ms(cli.Max))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if cfg.replay {
		verifyReplay(cfg, recordedRounds, recordedHat)
	}
	if cfg.maxShed >= 0 {
		fmt.Println("shed budget met: streams never shed")
	}
}

// verifyReplay re-decodes the recorded round stream two independent ways —
// through the library windowed decoder under the session's deterministic
// seed, and through a fresh service session — and requires the committed
// corrections to be byte-identical to the recorded run (the streaming
// determinism contract, DESIGN.md §7).
func verifyReplay(cfg streamLoadConfig, rounds []gf2.Vec, wantHat []byte) {
	if len(rounds) == 0 {
		log.Fatal("replay: no recorded stream")
	}
	layout := window.MemexpLayout(cfg.css, cfg.rounds)
	wd, err := window.New(cfg.d.H, cfg.d.Priors(cfg.p), layout, cfg.window, cfg.commit,
		decoding.Factory(cfg.spec.NewDecoder))
	if err != nil {
		log.Fatal(err)
	}
	wd.Reseed(service.RequestSeed(cfg.seed, 0)) // session 0, stream 0
	st := wd.NewStream()
	for _, rv := range rounds {
		if _, err := st.PushRound(rv); err != nil {
			log.Fatal(err)
		}
	}
	if got := st.Finish().ErrHat.AppendBytes(nil); !bytes.Equal(got, wantHat) {
		log.Fatal("replay: library windowed decode diverges from the recorded service stream")
	}

	c, err := service.Dial(cfg.addr, service.Hello{
		Code: cfg.codeName, Rounds: cfg.rounds, P: cfg.p,
		StreamSeed: cfg.seed, Deadline: cfg.deadline, Spec: cfg.spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cs, err := c.OpenStream(cfg.window, cfg.commit)
	if err != nil {
		log.Fatal(err)
	}
	for _, rv := range rounds {
		if err := cs.SendRounds([]gf2.Vec{rv}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := cs.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if got := res.ErrHat.AppendBytes(nil); !bytes.Equal(got, wantHat) {
		log.Fatal("replay: service stream replay diverges from the recorded run")
	}
	fmt.Println("replay: byte-identical (library windowed decode + service stream replay)")
}
