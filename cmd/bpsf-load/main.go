// Command bpsf-load drives a bpsf-serve instance with synthetic syndrome
// traffic and reports throughput and latency percentiles. Closed-loop mode
// keeps a fixed number of sessions each with one batch in flight (the
// classic saturation probe); open-loop mode submits batches at a fixed
// arrival rate regardless of completions, which is what exposes queueing
// delay and shedding under overload.
//
// Batch traffic samples server-side by default (-batch on): requests carry
// only a shot count and the server draws syndromes from its word-parallel
// batch frame sampler, so the wire and the client pay nothing for syndrome
// generation and responses report logical failures against the sampled
// ground truth. -batch off retains the client-side scalar sampler and
// uploads packed syndromes (the differential baseline).
//
// Usage:
//
// Named workload profiles (-profile, registry in internal/bench) replay
// the exact canonical mixes the bpsf-bench service baselines measure, so
// any committed BENCH_service.json number is one command to reproduce;
// explicitly set flags override the profile's corresponding field.
//
//	bpsf-load -addr 127.0.0.1:7421 -code bb144 -p 0.003 -shots 10000 -sessions 8
//	bpsf-load -addr 127.0.0.1:7421 -mode open -rate 2000 -deadline 5ms -shots 20000
//	bpsf-load -addr 127.0.0.1:7421 -code bb72 -batch off -batch-size 32
//	bpsf-load -addr 127.0.0.1:7421 -profile bulk-bb72-bposd
//
// -addr may also point at a bpsf-gateway: the protocol is identical, a
// -stats pull then returns the merged fleet snapshot with a per-backend
// breakdown, and -min-backends N gates on the number of healthy backends
// it reports (the CI fleet smoke's proof the traffic crossed a gateway).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"bpsf/internal/bench"
	"bpsf/internal/code"
	"bpsf/internal/codes"
	"bpsf/internal/decoding"
	"bpsf/internal/dem"
	"bpsf/internal/gf2"
	"bpsf/internal/memexp"
	"bpsf/internal/service"
	"bpsf/internal/sim"
	"bpsf/internal/window"
)

// applyProfile overlays a named workload profile onto the flag values:
// each profile field becomes the default of its corresponding flag, and
// any flag the user set explicitly (isSet) wins over the profile.
func applyProfile(prof bench.Profile, isSet func(string) bool, v profileFlags) {
	assignStr := func(name string, dst *string, val string) {
		if !isSet(name) {
			*dst = val
		}
	}
	assignInt := func(name string, dst *int, val int) {
		if !isSet(name) {
			*dst = val
		}
	}
	assignF64 := func(name string, dst *float64, val float64) {
		if !isSet(name) {
			*dst = val
		}
	}
	assignStr("code", v.code, prof.Code)
	assignInt("rounds", v.rounds, prof.Rounds)
	assignF64("p", v.p, prof.P)
	assignStr("decoder", v.decoder, prof.Spec.Kind)
	assignInt("bp-iters", v.bpIters, prof.Spec.BPIters)
	assignInt("osd-order", v.osdOrder, prof.Spec.OSDOrder)
	assignInt("phi", v.phi, prof.Spec.Phi)
	assignInt("wmax", v.wmax, prof.Spec.WMax)
	assignInt("ns", v.ns, prof.Spec.NS)
	batch := "off"
	if prof.ServerSample {
		batch = "on"
	}
	assignStr("batch", v.batch, batch)
	assignInt("batch-size", v.batchSize, prof.BatchSize)
	assignInt("sessions", v.sessions, prof.Sessions)
	assignInt("shots", v.shots, prof.Shots)
	assignStr("mode", v.mode, prof.Mode)
	assignF64("rate", v.rate, prof.Rate)
	assignInt("window", v.window, prof.Window)
	assignInt("commit", v.commit, prof.Commit)
}

// profileFlags collects the flag targets a profile may preset.
type profileFlags struct {
	code, decoder, batch, mode                 *string
	rounds, bpIters, osdOrder, phi, wmax, ns   *int
	batchSize, sessions, shots, window, commit *int
	p, rate                                    *float64
}

// failAll prints every collected session error and exits non-zero once —
// the load generator never discards a failure (the pre-PR6 code
// log.Fataled on the first error and dropped the rest).
func failAll(errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, err := range errs {
		log.Print(err)
	}
	os.Exit(1)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-load: ")
	addr := flag.String("addr", "127.0.0.1:7421", "server address (host:port, unix:<path>, or a Unix socket path)")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default)")
	p := flag.Float64("p", 0.003, "physical error rate")
	decoder := flag.String("decoder", "bpsf", "decoder: "+fmt.Sprint(service.SpecKinds()))
	bpIters := flag.Int("bp-iters", 100, "BP iteration cap")
	osdOrder := flag.Int("osd-order", 10, "OSD-CS order (bposd)")
	phi := flag.Int("phi", 50, "BP-SF candidate set size |Φ|")
	wmax := flag.Int("wmax", 10, "BP-SF maximum trial weight")
	ns := flag.Int("ns", 10, "BP-SF sampled trials per weight (0 = exhaustive)")
	sessions := flag.Int("sessions", 4, "concurrent sessions")
	shots := flag.Int("shots", 1000, "total syndromes across all sessions")
	batchSize := flag.Int("batch-size", 16, "syndromes per request batch")
	batch := flag.String("batch", "on",
		"server-side bit-packed 64-shot batch sampling: on | off (off = retained client-side scalar sampling + syndrome upload; ignored in -window streaming mode)")
	mode := flag.String("mode", "closed", "load model: closed | open")
	rate := flag.Float64("rate", 500, "total batch arrivals per second (open mode)")
	seed := flag.Int64("seed", 1, "sampler and stream seed base")
	deadline := flag.Duration("deadline", 0, "server queue deadline (0 = backpressure, never shed)")
	maxShed := flag.Int("max-shed", -1, "exit nonzero when more responses were shed (-1 = no check)")
	windowRounds := flag.Int("window", 0,
		"streaming mode: open windowed decode streams of this many rounds instead of batches (0 = batch mode)")
	commitRounds := flag.Int("commit", 1, "committed rounds per stream window (streaming mode)")
	replay := flag.Bool("replay", false,
		"streaming mode: replay the first recorded round stream and require byte-identical commits (library + service)")
	profile := flag.String("profile", "",
		"named workload profile to replay: "+fmt.Sprint(bench.ProfileNames())+" (explicit flags override; see bpsf-bench -list)")
	pullStats := flag.Bool("stats", false,
		"after the run, pull the server's telemetry snapshot in-protocol (msgStats) and print it")
	minBatchDecoded := flag.Int("min-batch-decoded", -1,
		"exit nonzero unless the server's pools report at least this many requests decoded by the bitsliced batch kernel (-1 = no check; pulls a stats snapshot)")
	minBackends := flag.Int("min-backends", -1,
		"exit nonzero unless the target's stats snapshot reports at least this many healthy backends — the fleet-smoke gate proving traffic went through a gateway, not a bare server (-1 = no check)")
	flag.Parse()

	if *profile != "" {
		prof, err := bench.GetProfile(*profile)
		if err != nil {
			log.Fatal(err)
		}
		set := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		applyProfile(prof, func(name string) bool { return set[name] }, profileFlags{
			code: codeName, rounds: rounds, p: p, decoder: decoder,
			bpIters: bpIters, osdOrder: osdOrder, phi: phi, wmax: wmax, ns: ns,
			batch: batch, batchSize: batchSize, sessions: sessions, shots: shots,
			mode: mode, rate: rate, window: windowRounds, commit: commitRounds,
		})
		fmt.Printf("profile %s: %s\n", prof.Name, prof.Description)
	}

	useBatch, err := sim.ParseBatchFlag(*batch)
	if err != nil {
		log.Fatal(err)
	}
	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	r := *rounds
	if r == 0 {
		r = entry.Rounds
	}
	spec := service.Spec{Kind: *decoder, BPIters: *bpIters, OSDOrder: *osdOrder,
		Phi: *phi, WMax: *wmax, NS: *ns}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	// Local model build only when this side samples: scalar batch mode and
	// streaming both generate syndromes client-side (the generator owns its
	// syndrome source so the server is measured on decoding alone). The
	// default server-sampled batch mode skips the DEM extraction entirely —
	// the server already owns that build.
	var css *code.CSS
	var d *dem.DEM
	if !useBatch || *windowRounds > 0 {
		var err error
		css, err = entry.Build()
		if err != nil {
			log.Fatal(err)
		}
		circ, err := memexp.Build(css, r, memexp.Uniform())
		if err != nil {
			log.Fatal(err)
		}
		d, err = dem.Extract(circ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, %d rounds, %d mechanisms, p=%g, decoder %s\n", css.Name, r, d.NumMechs(), *p, spec)
	} else {
		fmt.Printf("%s, %d rounds, p=%g, decoder %s (server-side sampling)\n", entry.Name, r, *p, spec)
	}

	statsHello := service.Hello{Code: *codeName, Rounds: r, P: *p, Spec: spec}
	if *windowRounds > 0 {
		runStreamLoad(streamLoadConfig{
			addr: *addr, codeName: *codeName, rounds: r, p: *p, spec: spec,
			window: *windowRounds, commit: *commitRounds,
			sessions: *sessions, streams: *shots, mode: *mode, rate: *rate,
			seed: *seed, deadline: *deadline, replay: *replay, maxShed: *maxShed,
			css: css, d: d,
		})
		if *pullStats {
			printServerStats(*addr, statsHello)
		}
		if *minBackends >= 0 {
			checkMinBackends(*addr, statsHello, *minBackends)
		}
		return
	}
	sampling := "server-side batch sampling"
	if !useBatch {
		sampling = "client-side scalar sampling"
	}
	fmt.Printf("%s-loop: %d sessions, %d shots, batch %d, %s\n",
		*mode, *sessions, *shots, *batchSize, sampling)

	// The batch plane runs on the shared load driver (service.DriveLoad,
	// also the bpsf-bench service-area loopback driver). Every failure
	// path is accounted there: open-loop batches whose responses never
	// arrive are counted and reported — they used to be silently dropped,
	// letting -max-shed 0 pass on runs that lost work — and ALL session
	// errors come back joined, not just the first.
	res, err := service.DriveLoad(*addr, service.LoadConfig{
		Code: *codeName, Rounds: r, P: *p, Spec: spec,
		Sessions: *sessions, Shots: *shots, BatchSize: *batchSize,
		ServerSample: useBatch, DEM: d,
		Mode: *mode, Rate: *rate,
		Seed: *seed, Deadline: *deadline,
	})
	if err != nil {
		if res.FailedBatches > 0 {
			log.Printf("%d batch(es) lost without responses (decoded %d, shed %d of %d shots):",
				res.FailedBatches, res.Decoded, res.Shed, *shots)
		}
		log.Fatal(err)
	}

	fmt.Printf("\n%d decoded, %d shed, %d decode failures in %v  →  %.0f syndromes/s\n",
		res.Decoded, res.Shed, res.DecodeFailures, res.Wall.Round(time.Millisecond), res.Throughput())
	if useBatch && res.Decoded > 0 {
		fmt.Printf("%d logical failures among the server-sampled shots (LER %.2e)\n",
			res.LogicalFailures, float64(res.LogicalFailures)/float64(res.Decoded))
	}

	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	srv := sim.Summarize(res.ServerLat)
	cli := sim.Summarize(res.ClientLat)
	tb := sim.NewTable("latency", "n", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	tb.Row("server (queue+decode)", srv.N, ms(srv.P50), ms(srv.P95), ms(srv.P99), ms(srv.P999), ms(srv.Max))
	tb.Row("client batch RTT", cli.N, ms(cli.P50), ms(cli.P95), ms(cli.P99), ms(cli.P999), ms(cli.Max))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *pullStats {
		printServerStats(*addr, statsHello)
	}

	if *maxShed >= 0 && res.Shed > *maxShed {
		log.Fatalf("shed %d responses, budget %d", res.Shed, *maxShed)
	}
	if *minBatchDecoded >= 0 {
		checkBatchDecoded(*addr, statsHello, *minBatchDecoded)
	}
	if *minBackends >= 0 {
		checkMinBackends(*addr, statsHello, *minBackends)
	}
}

// checkMinBackends pulls a stats snapshot and enforces a floor on the
// number of healthy backends it reports. A bare bpsf-serve snapshot has
// no backends section, so the gate also proves the load actually went
// through a gateway; the per-backend breakdown prints either way.
func checkMinBackends(addr string, h service.Hello, min int) {
	c, err := service.Dial(addr, h)
	if err != nil {
		log.Fatalf("-min-backends stats session: %v", err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		log.Fatalf("-min-backends stats pull: %v", err)
	}
	healthy := 0
	for _, b := range snap.Backends {
		state := "down"
		if b.Healthy {
			healthy++
			state = "up"
		}
		if b.Draining {
			state += ",draining"
		}
		fmt.Printf("backend %s (%s): %s sessions_total=%d requests=%d failovers=%d replayed=%d\n",
			b.Name, b.Addr, state, b.SessionsTotal, b.Requests, b.Failovers, b.Replayed)
	}
	fmt.Printf("%d of %d backends healthy\n", healthy, len(snap.Backends))
	if healthy < min {
		log.Fatalf("%d healthy backends, floor %d (is %s a gateway?)", healthy, min, addr)
	}
}

// checkBatchDecoded pulls a stats snapshot and enforces a floor on the
// number of requests the pools decoded through the bitsliced batch
// kernel — the CI loopback smoke's proof that the fast path actually
// served traffic, not just that responses came back.
func checkBatchDecoded(addr string, h service.Hello, min int) {
	c, err := service.Dial(addr, h)
	if err != nil {
		log.Fatalf("-min-batch-decoded stats session: %v", err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		log.Fatalf("-min-batch-decoded stats pull: %v", err)
	}
	var lanes, calls uint64
	for _, ps := range snap.Pools {
		lanes += ps.BatchLanes
		calls += ps.BatchDecodes
	}
	fmt.Printf("batch kernel served %d requests in %d DecodeBatch calls\n", lanes, calls)
	if lanes < uint64(min) {
		log.Fatalf("batch kernel decoded %d requests, floor %d", lanes, min)
	}
}

// printServerStats opens a short stats session and prints the server's
// full telemetry snapshot — the same data the admin plane's /statusz
// serves, pulled in-protocol so it works with no admin listener bound.
func printServerStats(addr string, h service.Hello) {
	c, err := service.Dial(addr, h)
	if err != nil {
		log.Fatalf("stats session: %v", err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		log.Fatalf("stats pull: %v", err)
	}
	fmt.Println("\nserver telemetry snapshot (msgStats):")
	snap.WriteText(os.Stdout)
}

// ---- streaming mode ----

type streamLoadConfig struct {
	addr, codeName string
	rounds         int
	p              float64
	spec           service.Spec
	window, commit int
	sessions       int
	streams        int // total streams across sessions (one multi-round shot each)
	mode           string
	rate           float64 // total round arrivals/s (open mode)
	seed           int64
	deadline       time.Duration
	replay         bool
	maxShed        int
	css            *code.CSS
	d              *dem.DEM
}

// splitRounds slices a full multi-round syndrome into per-round vectors
// along the stream's advertised layout.
func splitRounds(s gf2.Vec, detsPerRound []int) []gf2.Vec {
	out := make([]gf2.Vec, len(detsPerRound))
	off := 0
	for ri, nd := range detsPerRound {
		v := gf2.NewVec(nd)
		for i := 0; i < nd; i++ {
			if s.Get(off + i) {
				v.Set(i, true)
			}
		}
		out[ri] = v
		off += nd
	}
	return out
}

// runStreamLoad drives the windowed stream plane: every "shot" is a full
// multi-round syndrome stream pushed round by round (open loop paces round
// arrivals at -rate regardless of commit completions), reporting
// per-commit latency percentiles — server-side (round arrival → commit)
// and client-observed (last needed round sent → commit received). Streams
// never shed; the -max-shed gate therefore passes iff the run completes.
func runStreamLoad(cfg streamLoadConfig) {
	fmt.Printf("%s-loop streaming: %d sessions, %d streams, window %d commit %d\n",
		cfg.mode, cfg.sessions, cfg.streams, cfg.window, cfg.commit)
	var interval time.Duration
	if cfg.mode == "open" {
		if cfg.rate <= 0 {
			log.Fatal("-mode open needs -rate > 0")
		}
		interval = time.Duration(float64(cfg.sessions) / cfg.rate * float64(time.Second))
	} else if cfg.mode != "closed" {
		log.Fatalf("unknown mode %q (want closed|open)", cfg.mode)
	}
	perSession := (cfg.streams + cfg.sessions - 1) / cfg.sessions

	var mu sync.Mutex
	var serverLat, clientLat []time.Duration
	var windows, streamFails, streamsRun int
	var recordedRounds []gf2.Vec // session 0, stream 0 (for -replay)
	var recordedHat []byte

	var wg sync.WaitGroup
	errs := make(chan error, cfg.sessions)
	t0 := time.Now()
	for s := 0; s < cfg.sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := service.Hello{
				Code: cfg.codeName, Rounds: cfg.rounds, P: cfg.p,
				StreamSeed: cfg.seed + int64(s)*1000,
				Deadline:   cfg.deadline,
				Spec:       cfg.spec,
			}
			c, err := service.Dial(cfg.addr, h)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", s, err)
				return
			}
			defer c.Close()
			sampler := dem.NewSampler(cfg.d, cfg.p, cfg.seed+int64(s))
			next := time.Now()
			for shot := 0; shot < perSession; shot++ {
				st, err := c.OpenStream(cfg.window, cfg.commit)
				if err != nil {
					errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
					return
				}
				dets := make([]int, st.NumRounds())
				for ri := range dets {
					dets[ri] = st.RoundDets(ri)
				}
				syn, _ := sampler.SampleShared()
				rounds := splitRounds(syn, dets)
				spans := st.Spans()

				var sendMu sync.Mutex
				sendT := make([]time.Time, len(rounds))
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						cm, err := st.NextCommit()
						if err != nil {
							return
						}
						recvT := time.Now()
						lastRound := spans[cm.Window].End - 1
						sendMu.Lock()
						sent := sendT[lastRound]
						sendMu.Unlock()
						mu.Lock()
						serverLat = append(serverLat, cm.Latency)
						clientLat = append(clientLat, recvT.Sub(sent))
						windows++
						mu.Unlock()
						if cm.Final {
							return
						}
					}
				}()
				for ri, rv := range rounds {
					if interval > 0 {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						next = next.Add(interval)
					}
					sendMu.Lock()
					sendT[ri] = time.Now()
					sendMu.Unlock()
					if err := st.SendRounds([]gf2.Vec{rv}); err != nil {
						errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
						return
					}
				}
				<-done
				res, err := st.Finish()
				if err != nil {
					errs <- fmt.Errorf("session %d stream %d: %w", s, shot, err)
					return
				}
				mu.Lock()
				streamsRun++
				if !res.Success {
					streamFails++
				}
				if s == 0 && shot == 0 {
					recordedRounds = rounds
					recordedHat = res.ErrHat.AppendBytes(nil)
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	failAll(all) // every session's failure, not just the first
	wall := time.Since(t0)

	fmt.Printf("\n%d streams (%d windows committed), %d stream failures, 0 shed in %v  →  %.0f windows/s\n",
		streamsRun, windows, streamFails, wall.Round(time.Millisecond),
		float64(windows)/wall.Seconds())
	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	srv := sim.Summarize(serverLat)
	cli := sim.Summarize(clientLat)
	tb := sim.NewTable("per-commit latency", "n", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	tb.Row("server (arrival→commit)", srv.N, ms(srv.P50), ms(srv.P95), ms(srv.P99), ms(srv.P999), ms(srv.Max))
	tb.Row("client (send→commit)", cli.N, ms(cli.P50), ms(cli.P95), ms(cli.P99), ms(cli.P999), ms(cli.Max))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if cfg.replay {
		verifyReplay(cfg, recordedRounds, recordedHat)
	}
	if cfg.maxShed >= 0 {
		fmt.Println("shed budget met: streams never shed")
	}
}

// verifyReplay re-decodes the recorded round stream two independent ways —
// through the library windowed decoder under the session's deterministic
// seed, and through a fresh service session — and requires the committed
// corrections to be byte-identical to the recorded run (the streaming
// determinism contract, DESIGN.md §7).
func verifyReplay(cfg streamLoadConfig, rounds []gf2.Vec, wantHat []byte) {
	if len(rounds) == 0 {
		log.Fatal("replay: no recorded stream")
	}
	layout := window.MemexpLayout(cfg.css, cfg.rounds)
	wd, err := window.New(cfg.d.H, cfg.d.Priors(cfg.p), layout, cfg.window, cfg.commit,
		decoding.Factory(cfg.spec.NewDecoder))
	if err != nil {
		log.Fatal(err)
	}
	wd.Reseed(service.RequestSeed(cfg.seed, 0)) // session 0, stream 0
	st := wd.NewStream()
	for _, rv := range rounds {
		if _, err := st.PushRound(rv); err != nil {
			log.Fatal(err)
		}
	}
	if got := st.Finish().ErrHat.AppendBytes(nil); !bytes.Equal(got, wantHat) {
		log.Fatal("replay: library windowed decode diverges from the recorded service stream")
	}

	c, err := service.Dial(cfg.addr, service.Hello{
		Code: cfg.codeName, Rounds: cfg.rounds, P: cfg.p,
		StreamSeed: cfg.seed, Deadline: cfg.deadline, Spec: cfg.spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cs, err := c.OpenStream(cfg.window, cfg.commit)
	if err != nil {
		log.Fatal(err)
	}
	for _, rv := range rounds {
		if err := cs.SendRounds([]gf2.Vec{rv}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := cs.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if got := res.ErrHat.AppendBytes(nil); !bytes.Equal(got, wantHat) {
		log.Fatal("replay: service stream replay diverges from the recorded run")
	}
	fmt.Println("replay: byte-identical (library windowed decode + service stream replay)")
}
