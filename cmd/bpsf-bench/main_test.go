package main

import (
	"strings"
	"testing"

	"bpsf/internal/bench"
)

// TestParseAreas is the table-driven -areas validation, matching the
// -decoder flag convention: unknown values error naming the available
// set (the CLI exits non-zero via log.Fatal), valid subsets run in
// pinned suite order regardless of flag order.
func TestParseAreas(t *testing.T) {
	cases := []struct {
		value   string
		want    string
		wantErr bool
	}{
		{"sampler,decode,window,service", "sampler,decode,window,service", false},
		{"service,sampler", "sampler,service", false}, // suite order, not flag order
		{"decode", "decode", false},
		{" window , decode ", "decode,window", false},
		{"decode,decode", "decode", false},
		{"", "", true},
		{",", "", true},
		{"nope", "", true},
		{"decode,nope", "", true},
		{"Decode", "", true}, // case-sensitive, like -decoder
	}
	for _, tc := range cases {
		t.Run("value="+tc.value, func(t *testing.T) {
			got, err := parseAreas(tc.value)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("-areas %q accepted: %v", tc.value, got)
				}
				if !strings.Contains(err.Error(), "areas:") {
					t.Errorf("error %q does not print the available set", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if joined := strings.Join(got, ","); joined != tc.want {
				t.Errorf("-areas %q = %q, want %q", tc.value, joined, tc.want)
			}
		})
	}
}

// TestDefaultAreasCoverSuite pins the default flag value to the full
// pinned suite — adding an area to bench.Areas() automatically lands in
// the CLI default and in CI's `bpsf-bench -smoke -compare`.
func TestDefaultAreasCoverSuite(t *testing.T) {
	got, err := parseAreas(strings.Join(bench.Areas(), ","))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bench.Areas()) {
		t.Errorf("default areas %v != suite %v", got, bench.Areas())
	}
}
