// Command bpsf-bench is the perf-trajectory harness: it runs the pinned
// representative suite (sampler, every registered decoder kernel,
// windowed vs whole-history, and the decode service over an in-process
// serve+load loopback pair) and writes versioned BENCH_<area>.json
// artifacts. The committed copies at the repo root are the baselines:
// run plain `bpsf-bench` to adopt a new baseline, `bpsf-bench -compare`
// to diff a fresh run against it with per-metric tolerance bands
// (allocation regressions are exact-fail), exiting non-zero on any
// regression. CI runs `bpsf-bench -smoke -compare` (DESIGN.md §9).
//
// Usage:
//
//	bpsf-bench                         # full run, adopt baselines in .
//	bpsf-bench -smoke -compare         # CI gate against committed baselines
//	bpsf-bench -areas decode -out /tmp # one area, artifacts elsewhere
//	bpsf-bench -list                   # areas and named workload profiles
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"bpsf/internal/bench"
	"bpsf/internal/sim"
)

// parseAreas validates a comma-separated -areas value against the pinned
// area vocabulary, preserving suite order; unknown areas error naming the
// available set (the -decoder flag convention).
func parseAreas(v string) ([]string, error) {
	known := make(map[string]bool)
	for _, a := range bench.Areas() {
		known[a] = true
	}
	want := make(map[string]bool)
	for _, a := range strings.Split(v, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !known[a] {
			return nil, fmt.Errorf("unknown area %q (areas: %v)", a, bench.Areas())
		}
		want[a] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no areas selected (areas: %v)", bench.Areas())
	}
	var out []string
	for _, a := range bench.Areas() {
		if want[a] {
			out = append(out, a)
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-bench: ")
	areasFlag := flag.String("areas", strings.Join(bench.Areas(), ","),
		"comma-separated areas to run: "+strings.Join(bench.Areas(), ","))
	out := flag.String("out", ".", "directory for fresh BENCH_<area>.json artifacts")
	baseline := flag.String("baseline", ".", "directory holding committed baselines (-compare)")
	compare := flag.Bool("compare", false,
		"diff the fresh run against the committed baselines and exit non-zero on regression (instead of adopting it)")
	smoke := flag.Bool("smoke", false,
		"CI depth: identical workload set, shorter measurements and capped service shots")
	tolerance := flag.Float64("tolerance", 100*bench.DefaultTolerance.Frac,
		"regression band for time/throughput metrics, in percent (allocs/op is always exact-fail)")
	slack := flag.Float64("cross-host-slack", bench.DefaultTolerance.CrossHostSlack,
		"time-band multiplier applied when the baseline was measured on a different host class")
	seed := flag.Int64("seed", 1, "suite sampler/decoder seed")
	list := flag.Bool("list", false, "print the areas and named workload profiles, then exit")
	flag.Parse()

	if *list {
		fmt.Printf("areas: %s\n\nworkload profiles (bpsf-load -profile <name>):\n", strings.Join(bench.Areas(), ", "))
		for _, name := range bench.ProfileNames() {
			p, _ := bench.GetProfile(name)
			fmt.Printf("  %-18s %s\n", name, p.Description)
		}
		return
	}
	areas, err := parseAreas(*areasFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg := bench.Config{Smoke: *smoke, Seed: *seed}
	tol := bench.Tolerance{Frac: *tolerance / 100, CrossHostSlack: *slack}

	totalRegressions := 0
	for _, area := range areas {
		fmt.Printf("== area %s ==\n", area)
		rep, err := bench.Run(area, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		if !*compare {
			tb := sim.NewTable("workload", "metric", "value", "n")
			for _, e := range rep.Entries {
				tb.Row(e.Workload, e.Metric, e.Value, e.N)
			}
			if err := tb.Write(os.Stdout); err != nil {
				log.Fatal(err)
			}
			continue
		}
		base, err := bench.ReadArea(*baseline, area)
		if err != nil {
			log.Fatalf("no usable committed baseline for area %s: %v\n"+
				"(run `bpsf-bench -areas %s -out %s` to adopt one)", area, err, area, *baseline)
		}
		deltas, regressions := bench.Compare(base, rep, tol)
		tb := sim.NewTable("workload", "metric", "base", "fresh", "ratio", "verdict")
		for _, d := range deltas {
			verdict := "ok"
			if d.Regressed {
				verdict = "REGRESSED: " + d.Reason
			} else if d.Reason != "" {
				verdict = d.Reason
			}
			tb.Row(d.Workload, d.Metric, d.Base, d.Fresh, d.Ratio, verdict)
		}
		if err := tb.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if base.Host.Fingerprint() != rep.Host.Fingerprint() {
			fmt.Printf("note: baseline host %s != this host %s — time bands widened %gx, allocs stay exact\n",
				base.Host.Fingerprint(), rep.Host.Fingerprint(), *slack)
		}
		totalRegressions += regressions
	}
	if totalRegressions > 0 {
		log.Fatalf("%d metric(s) regressed beyond tolerance against the committed baselines", totalRegressions)
	}
	if *compare {
		fmt.Println("perf trajectory: no regressions against the committed baselines")
	}
}
