// Command bpsf-fleet boots a local loopback decode fleet for CI and
// development: N bpsf-serve-equivalent backends (b0..bN-1) on ephemeral
// loopback ports behind one bpsf-gateway front door, with scheduled
// fault injection — kill a member mid-run, revive it, or cycle every
// member through a drain-aware rolling restart. The gateway's failover
// machinery sees real TCP backends dying, exactly like a multi-host
// fleet (DESIGN.md §12).
//
// Usage:
//
//	bpsf-fleet -n 3 -listen 127.0.0.1:7430 -admin 127.0.0.1:7431
//	bpsf-fleet -n 3 -kill 1@2s -revive 1s -duration 10s
//	bpsf-fleet -n 3 -rolling 2s -rolling-grace 500ms -duration 10s
//
// With -duration the fleet stops by itself (CI mode); otherwise it runs
// until SIGINT/SIGTERM. SIGUSR1 dumps the merged fleet telemetry
// snapshot to stderr. The final merged snapshot always prints on exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bpsf/internal/fleet"
	"bpsf/internal/service"
)

// killSpec is a scheduled member kill: index i, delay d after start.
type killSpec struct {
	index int
	after time.Duration
}

// parseKill resolves one -kill value of the form "i@dur" (member index
// at sign duration), e.g. "1@2s".
func parseKill(v string) (killSpec, error) {
	is, ds, ok := strings.Cut(v, "@")
	if !ok {
		return killSpec{}, fmt.Errorf("bad -kill %q (want index@delay, e.g. 1@2s)", v)
	}
	i, err := strconv.Atoi(is)
	if err != nil || i < 0 {
		return killSpec{}, fmt.Errorf("bad -kill index in %q", v)
	}
	d, err := time.ParseDuration(ds)
	if err != nil || d < 0 {
		return killSpec{}, fmt.Errorf("bad -kill delay in %q", v)
	}
	return killSpec{index: i, after: d}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-fleet: ")
	n := flag.Int("n", 3, "backend member count")
	listen := flag.String("listen", "127.0.0.1:0", "gateway listen address (clients dial this)")
	admin := flag.String("admin", "", "gateway admin HTTP listen address serving /metrics, /statusz and /debug/pprof (empty = off)")
	poolSize := flag.Int("pool-size", 2, "warm decoders per pool, per member")
	queueDepth := flag.Int("queue-depth", 1024, "admission queue bound per pool, per member")
	maxBatch := flag.Int("max-batch", 32, "adaptive coalescing cap per member")
	windowRounds := flag.Int("window", 3, "default sliding-window size for streams (members and routing key)")
	commitRounds := flag.Int("commit", 1, "default committed rounds per stream window")
	var kills []killSpec
	flag.Func("kill", "kill member i after a delay, as index@delay e.g. 1@2s (repeatable)", func(v string) error {
		k, err := parseKill(v)
		if err == nil {
			kills = append(kills, k)
		}
		return err
	})
	revive := flag.Duration("revive", 0, "restart each killed member this long after its kill (0 = leave it dead)")
	rolling := flag.Duration("rolling", 0, "start a drain-aware rolling restart of every member after this delay (0 = off)")
	rollingGrace := flag.Duration("rolling-grace", 500*time.Millisecond, "per-member session grace during the rolling restart")
	duration := flag.Duration("duration", 0, "stop the fleet after this long (0 = run until SIGINT/SIGTERM)")
	quiet := flag.Bool("quiet", false, "suppress member and gateway log lines")
	flag.Parse()

	if *commitRounds < 1 || *commitRounds > *windowRounds {
		log.Fatalf("need 1 ≤ -commit ≤ -window, got -window %d -commit %d", *windowRounds, *commitRounds)
	}
	for _, k := range kills {
		if k.index >= *n {
			log.Fatalf("-kill %d@%v: no member %d in a fleet of %d", k.index, k.after, k.index, *n)
		}
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	f, err := fleet.StartLocal(fleet.FleetOptions{
		Backends: *n,
		Server: service.Options{
			PoolSize:     *poolSize,
			QueueDepth:   *queueDepth,
			MaxBatch:     *maxBatch,
			StreamWindow: *windowRounds,
			StreamCommit: *commitRounds,
			Logf:         logf,
		},
		Gateway:       fleet.GatewayOptions{Logf: logf},
		GatewayListen: *listen,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	log.Printf("gateway on %s fronting %d member(s) (pool-size=%d window=%d commit=%d)",
		f.GatewayAddr(), *n, *poolSize, *windowRounds, *commitRounds)
	for i := 0; i < *n; i++ {
		addr, _ := f.BackendAddr(i)
		log.Printf("  b%d = %s", i, addr)
	}
	if *admin != "" {
		adminAddr, err := f.Gateway().ServeAdmin(*admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("admin plane on http://%s (/metrics /statusz /debug/pprof)", adminAddr)
	}

	// Scheduled fault injection. A failure in any scheduled op fails the
	// whole run (exit non-zero) once the fleet stops — CI must not pass
	// on a smoke whose kill or restart never actually happened.
	var failed atomic.Bool
	for _, k := range kills {
		k := k
		time.AfterFunc(k.after, func() {
			log.Printf("killing b%d (t=%v)", k.index, k.after)
			if err := f.Kill(k.index); err != nil {
				log.Printf("kill b%d: %v", k.index, err)
				failed.Store(true)
				return
			}
			if *revive > 0 {
				time.AfterFunc(*revive, func() {
					log.Printf("reviving b%d", k.index)
					if err := f.Restart(k.index); err != nil {
						log.Printf("revive b%d: %v", k.index, err)
						failed.Store(true)
					}
				})
			}
		})
	}
	if *rolling > 0 {
		time.AfterFunc(*rolling, func() {
			log.Printf("rolling restart (grace %v)", *rollingGrace)
			if err := f.RollingRestart(*rollingGrace); err != nil {
				log.Printf("rolling restart: %v", err)
				failed.Store(true)
				return
			}
			log.Printf("rolling restart done")
		})
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
loop:
	for {
		select {
		case sig := <-sigs:
			if sig == syscall.SIGUSR1 {
				f.Snapshot().WriteText(os.Stderr)
				continue
			}
			log.Printf("%v: stopping fleet", sig)
			break loop
		case <-timeout:
			log.Printf("duration %v elapsed: stopping fleet", *duration)
			break loop
		}
	}
	snap := f.Snapshot()
	f.Close()
	snap.WriteText(os.Stdout)
	if failed.Load() {
		log.Fatal("scheduled fault injection failed (see log above)")
	}
}
