package main

import (
	"testing"
	"time"
)

// TestParseKill is the table-driven -kill validation: index@delay
// parses, anything else errors.
func TestParseKill(t *testing.T) {
	cases := []struct {
		in      string
		want    killSpec
		wantErr bool
	}{
		{in: "1@2s", want: killSpec{index: 1, after: 2 * time.Second}},
		{in: "0@500ms", want: killSpec{index: 0, after: 500 * time.Millisecond}},
		{in: "2@0s", want: killSpec{index: 2, after: 0}},
		{in: "1", wantErr: true},       // no delay
		{in: "@2s", wantErr: true},     // no index
		{in: "x@2s", wantErr: true},    // non-numeric index
		{in: "-1@2s", wantErr: true},   // negative index
		{in: "1@nope", wantErr: true},  // bad duration
		{in: "1@-2s", wantErr: true},   // negative delay
		{in: "1@2s@3s", wantErr: true}, // trailing garbage
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseKill(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: accepted as %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q: got %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
