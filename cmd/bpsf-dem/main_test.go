package main

import (
	"strings"
	"testing"

	"bpsf/internal/sim"
)

// TestBatchFlagValues is the table-driven -batch validation (mirroring the
// -decoder pattern): accepted values resolve to the batch/scalar sampling
// toggle, anything else fails with an error naming the accepted set — the
// CLI exits non-zero via log.Fatal before building anything.
func TestBatchFlagValues(t *testing.T) {
	cases := []struct {
		value   string
		want    bool
		wantErr bool
	}{
		{"on", true, false},
		{"off", false, false},
		{"true", true, false},
		{"false", false, false},
		{"1", true, false},
		{"0", false, false},
		{"", false, true},
		{"fast", false, true},
		{"OFF", false, true}, // case-sensitive, like -decoder
	}
	for _, tc := range cases {
		t.Run("value="+tc.value, func(t *testing.T) {
			got, err := sim.ParseBatchFlag(tc.value)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("-batch %q accepted", tc.value)
				}
				if !strings.Contains(err.Error(), "on|off") {
					t.Errorf("error %q does not print the accepted set", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("-batch %q = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}

// TestDecoderFlagMatchesRegistry pins the -decoder vocabulary of this CLI
// to the constructor registry.
func TestDecoderFlagMatchesRegistry(t *testing.T) {
	for _, name := range sim.DecoderNames() {
		if _, ok := sim.Constructors()[name]; !ok {
			t.Errorf("registered decoder %q missing from Constructors()", name)
		}
	}
}
