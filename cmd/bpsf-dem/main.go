// Command bpsf-dem builds a code's syndrome-extraction circuit and detector
// error model and prints their statistics: qubit/gate/measurement counts,
// detector and observable counts, mechanism counts, and the Tanner-graph
// profile of the DEM check matrix. Useful for validating the circuit-level
// substrate and for comparing against the mechanism counts reported in the
// paper (Fig. 13).
//
// Usage:
//
//	bpsf-dem -code bb144 [-rounds 12] [-p 0.003] [-seed 1] [-shots 200]
//	bpsf-dem -code rsurf3 -decoder uf        # decode the sampled shots too
//	bpsf-dem -code rsurf5 -batch off         # retained scalar sampler
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bpsf/internal/codes"
	"bpsf/internal/dem"
	"bpsf/internal/frame"
	"bpsf/internal/gf2"
	"bpsf/internal/memexp"
	"bpsf/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-dem: ")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default)")
	p := flag.Float64("p", 0.003, "physical error rate for the prior and shot summaries")
	seed := flag.Int64("seed", 1, "sampler seed")
	shots := flag.Int("shots", 200, "sampled shots for the empirical summary (0 = skip)")
	decoder := flag.String("decoder", "",
		"decode the sampled shots with a default-configured decoder and report convergence; one of "+
			fmt.Sprint(sim.DecoderNames())+" (empty = skip)")
	batch := flag.String("batch", "on",
		"bit-packed 64-shot batch sampling for the shot summary: on | off (off = the retained scalar sampler)")
	flag.Parse()

	useBatch, err := sim.ParseBatchFlag(*batch)
	if err != nil {
		log.Fatal(err)
	}

	var mkDecoder sim.Factory
	if *decoder != "" {
		var ok bool
		mkDecoder, ok = sim.Constructors()[*decoder]
		if !ok {
			log.Fatalf("unknown decoder %q (available: %v)", *decoder, sim.DecoderNames())
		}
	}

	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	css, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}
	r := *rounds
	if r == 0 {
		r = entry.Rounds
	}

	fmt.Printf("code: %s  [[%d,%d,%d]]\n", css.Name, css.N, css.K, css.D)
	fmt.Printf("checks: X=%d Z=%d (measured: %d/%d)\n", css.HX.Rows(), css.HZ.Rows(), css.GX.Rows(), css.GZ.Rows())

	t0 := time.Now()
	circ, err := memexp.Build(css, r, memexp.Uniform())
	if err != nil {
		log.Fatal(err)
	}
	st := circ.Stats()
	fmt.Printf("circuit (%d rounds): qubits=%d gates=%d noiseOps=%d meas=%d detectors=%d observables=%d  [built in %v]\n",
		r, st.Qubits, st.Gates, st.NoiseOps, st.Measurements, st.Detectors, st.Observables, time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	d, err := dem.Extract(circ)
	if err != nil {
		log.Fatal(err)
	}
	extractTime := time.Since(t1)

	fmt.Printf("DEM: detectors=%d observables=%d mechanisms=%d nnz=%d  [extracted in %v]\n",
		d.NumDets, d.NumObs, d.NumMechs(), d.H.NNZ(), extractTime.Round(time.Millisecond))

	maxCol, maxRow := 0, 0
	for m := 0; m < d.NumMechs(); m++ {
		if w := d.H.ColWeight(m); w > maxCol {
			maxCol = w
		}
	}
	for dt := 0; dt < d.NumDets; dt++ {
		if w := d.H.RowWeight(dt); w > maxRow {
			maxRow = w
		}
	}
	fmt.Printf("DEM Tanner profile: max column weight=%d, max row weight=%d\n", maxCol, maxRow)

	priors := d.Priors(*p)
	var sum float64
	for _, q := range priors {
		sum += q
	}
	fmt.Printf("priors at p=%g: expected fired mechanisms per shot=%.2f\n", *p, sum)

	if *shots > 0 {
		var dec sim.Decoder
		if mkDecoder != nil {
			dec, err = mkDecoder(d.H, priors)
			if err != nil {
				log.Fatal(err)
			}
		}
		// nextShot abstracts the two sampling paths: the word-parallel
		// 64-shot batch sampler (default) and the retained scalar sampler
		// (-batch off), both returning the shot's syndrome and fired count.
		var nextShot func() (gf2.Vec, int)
		mode := "batch"
		if useBatch {
			bs := frame.NewDEMSampler(d, *p, *seed)
			cur := frame.NewCursor(bs.SampleBlock)
			syn := gf2.NewVec(d.NumDets)
			nextShot = func() (gf2.Vec, int) {
				sb, _ := cur.Next()
				_ = syn.SetBytes(sb) // geometry fixed by the DEM
				return syn, bs.LaneFires()[cur.Lane()]
			}
		} else {
			mode = "scalar"
			sampler := dem.NewSampler(d, *p, *seed)
			nextShot = func() (gf2.Vec, int) {
				syndrome, _ := sampler.SampleShared()
				return syndrome, len(sampler.Mechs())
			}
		}
		var mechs, synWeight, quiet int
		var converged int
		var decodeTime time.Duration
		for i := 0; i < *shots; i++ {
			syndrome, fired := nextShot()
			mechs += fired
			w := syndrome.Weight()
			synWeight += w
			if w == 0 {
				quiet++
			}
			if dec != nil {
				// the decode service's per-request seed derivation
				// (service.RequestSeed), without linking the service
				sim.Reseed(dec, sim.ShardSeed(*seed, i))
				out := dec.Decode(syndrome)
				if out.Success {
					converged++
				}
				decodeTime += out.Time
			}
		}
		n := float64(*shots)
		fmt.Printf("sampled %d shots (seed %d, %s sampler): avg fired mechanisms=%.2f, avg syndrome weight=%.2f, zero-syndrome shots=%.1f%%\n",
			*shots, *seed, mode, float64(mechs)/n, float64(synWeight)/n, 100*float64(quiet)/n)
		if dec != nil {
			fmt.Printf("decoder %s: %d/%d syndromes satisfied (%.1f%%), avg decode %.4f ms\n",
				dec.Name(), converged, *shots, 100*float64(converged)/n,
				float64(decodeTime.Nanoseconds())/n/1e6)
		}
	}
	os.Exit(0)
}
