// Command bpsf-latency measures decoding-time distributions for one code
// under circuit-level noise: the selected -decoder (serial, and for BP-SF
// the modeled P-worker pools and GPU estimates) against the BP-OSD
// baseline — the measurements behind the paper's Figures 13–16 and Table I.
// -window wraps the measured decoder in the sliding-window scheduler to
// read the bounded-latency streaming trade-off directly.
//
// Usage:
//
//	bpsf-latency -code bb144 -p 0.003 -shots 500 -rounds 6 -model-workers 2,4,8
//	bpsf-latency -code rsurf5 -decoder uf -window 3 -shots 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bpsf/internal/bp"
	"bpsf/internal/codes"
	"bpsf/internal/dem"
	"bpsf/internal/experiments"
	"bpsf/internal/memexp"
	"bpsf/internal/osd"
	"bpsf/internal/sim"
	"bpsf/internal/sparse"
	"bpsf/internal/window"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-latency: ")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	p := flag.Float64("p", 0.003, "physical error rate")
	shots := flag.Int("shots", 300, "number of samples")
	seed := flag.Int64("seed", 1, "sampler seed")
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default)")
	decoder := flag.String("decoder", "bpsf", "measured decoder: "+fmt.Sprint(sim.DecoderNames()))
	bpIters := flag.Int("bp-iters", 100, "measured decoder's BP iteration cap")
	osdOrder := flag.Int("osd-order", 10, "OSD-CS order (measured bposd decoder)")
	phi := flag.Int("phi", 50, "BP-SF candidate set size |Φ|")
	wmax := flag.Int("wmax", 10, "BP-SF maximum trial weight")
	ns := flag.Int("ns", 10, "BP-SF sampled trials per weight (0 = exhaustive)")
	windowRounds := flag.Int("window", 0,
		"wrap the measured decoder in the sliding-window scheduler (0 = whole-history)")
	commitRounds := flag.Int("commit", 1, "committed rounds per window (with -window)")
	osdIters := flag.Int("osd-bp-iters", 1000, "baseline BP-OSD BP iteration cap")
	modelWorkersFlag := flag.String("model-workers", "2,4,8", "modeled worker pool sizes (bpsf only)")
	workers := flag.Int("workers", runtime.NumCPU(),
		"Monte-Carlo shard workers (per-shot times are noisier when shards share cores)")
	flag.Parse()

	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	css, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}
	r := *rounds
	if r == 0 {
		r = entry.Rounds
	}
	sfMk, err := decoderFactory(decoderFlags{
		Name:     *decoder,
		BPIters:  *bpIters,
		OSDOrder: *osdOrder,
		Phi:      *phi,
		WMax:     *wmax,
		NS:       *ns,
		Window:   *windowRounds,
		Commit:   *commitRounds,
		Layout:   window.MemexpLayout(css, r),
		Seed:     *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	circ, err := memexp.Build(css, r, memexp.Uniform())
	if err != nil {
		log.Fatal(err)
	}
	d, err := dem.Extract(circ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d rounds, %d mechanisms, p=%g, %d shots\n", css.Name, r, d.NumMechs(), *p, *shots)

	var modelWorkers []int
	for _, tok := range strings.Split(*modelWorkersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad -model-workers entry %q", tok)
		}
		modelWorkers = append(modelWorkers, w)
	}

	cfg := sim.Config{P: *p, Shots: *shots, Seed: *seed, KeepRecords: true, Workers: *workers}

	osdMk := func(h *sparse.Mat, priors []float64) (sim.Decoder, error) {
		return sim.NewBPOSD(h, priors, bp.Config{MaxIter: *osdIters},
			osd.Config{Method: osd.OSDCS, Order: 10}), nil
	}
	osdRes, err := sim.RunCircuit(d, r, osdMk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sfRes, err := sim.RunCircuit(d, r, sfMk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// convert schedule-model iteration units to time via the measured
	// per-iteration cost
	var totTime time.Duration
	totIters := 0
	for _, rec := range sfRes.Records {
		totTime += rec.Time
		totIters += rec.Iterations
	}
	iterUnit := time.Duration(0)
	if totIters > 0 {
		iterUnit = totTime / time.Duration(totIters)
	}

	gpu := sim.DefaultGPUModel()
	tb := sim.NewTable("decoder", "LER/round", "min ms", "median ms", "avg ms", "p99 ms", "max ms")
	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	row := func(label string, lerRound float64, ds []time.Duration) {
		st := sim.Summarize(ds)
		tb.Row(label, lerRound, ms(st.Min), ms(st.P50), ms(st.Avg), ms(st.P99), ms(st.Max))
	}

	times := func(recs []sim.Record) []time.Duration {
		out := make([]time.Duration, len(recs))
		for i, rec := range recs {
			out[i] = rec.Time
		}
		return out
	}
	row(osdRes.Decoder, osdRes.LERRound, times(osdRes.Records))
	row(sfRes.Decoder+" serial", sfRes.LERRound, times(sfRes.Records))
	// the P-worker schedule model and the GPU estimator consume BP-SF
	// per-trial records, so they only apply to the bare bpsf decoder
	if *decoder == "bpsf" && *windowRounds == 0 {
		for _, w := range modelWorkers {
			modeled := make([]time.Duration, len(sfRes.Records))
			for i, rec := range sfRes.Records {
				iters := sim.ScheduleLatency(rec.InitIterations, rec.TrialIterations, rec.TrialSuccess, w)
				modeled[i] = time.Duration(iters) * iterUnit
			}
			row(fmt.Sprintf("BP-SF P=%d (model)", w), sfRes.LERRound, modeled)
		}
		var gpuEst []time.Duration
		for _, rec := range sfRes.Records {
			gpuEst = append(gpuEst, gpu.Estimate(sim.Outcome{
				InitIterations:  rec.InitIterations,
				TrialIterations: rec.TrialIterations,
				TrialSuccess:    rec.TrialSuccess,
			}))
		}
		row("BP-SF (GPU_Est)", sfRes.LERRound, gpuEst)
	}

	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// decoderFlags carries the -decoder flag and its tuning companions
// (alias of the shared experiments.CLIDecoderFlags).
type decoderFlags = experiments.CLIDecoderFlags

// decoderFactory resolves the flag set to a sim decoder factory through
// experiments.CLIFactory; unknown decoder names report the available set
// (the CLI exits non-zero on the returned error).
func decoderFactory(f decoderFlags) (sim.Factory, error) {
	return experiments.CLIFactory(f)
}
