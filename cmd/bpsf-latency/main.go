// Command bpsf-latency measures decoding-time distributions for one code
// under circuit-level noise: BP-SF (serial and modeled P-worker pools)
// against BP-OSD, with the modeled GPU estimates — the measurements behind
// the paper's Figures 13–16 and Table I.
//
// Usage:
//
//	bpsf-latency -code bb144 -p 0.003 -shots 500 -rounds 6 -model-workers 2,4,8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bpsf/internal/bp"
	"bpsf/internal/bpsf"
	"bpsf/internal/codes"
	"bpsf/internal/dem"
	"bpsf/internal/memexp"
	"bpsf/internal/osd"
	"bpsf/internal/sim"
	"bpsf/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-latency: ")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	p := flag.Float64("p", 0.003, "physical error rate")
	shots := flag.Int("shots", 300, "number of samples")
	seed := flag.Int64("seed", 1, "sampler seed")
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default)")
	bpIters := flag.Int("bp-iters", 100, "BP-SF iteration cap")
	osdIters := flag.Int("osd-bp-iters", 1000, "BP-OSD BP iteration cap")
	modelWorkersFlag := flag.String("model-workers", "2,4,8", "modeled worker pool sizes")
	workers := flag.Int("workers", runtime.NumCPU(),
		"Monte-Carlo shard workers (per-shot times are noisier when shards share cores)")
	flag.Parse()

	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	css, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}
	r := *rounds
	if r == 0 {
		r = entry.Rounds
	}
	circ, err := memexp.Build(css, r, memexp.Uniform())
	if err != nil {
		log.Fatal(err)
	}
	d, err := dem.Extract(circ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d rounds, %d mechanisms, p=%g, %d shots\n", css.Name, r, d.NumMechs(), *p, *shots)

	var modelWorkers []int
	for _, tok := range strings.Split(*modelWorkersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad -model-workers entry %q", tok)
		}
		modelWorkers = append(modelWorkers, w)
	}

	cfg := sim.Config{P: *p, Shots: *shots, Seed: *seed, KeepRecords: true, Workers: *workers}

	osdMk := func(h *sparse.Mat, priors []float64) (sim.Decoder, error) {
		return sim.NewBPOSD(h, priors, bp.Config{MaxIter: *osdIters},
			osd.Config{Method: osd.OSDCS, Order: 10}), nil
	}
	osdRes, err := sim.RunCircuit(d, r, osdMk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sfMk := func(h *sparse.Mat, priors []float64) (sim.Decoder, error) {
		return sim.NewBPSF(h, priors, bpsf.Config{
			Init:    bp.Config{MaxIter: *bpIters},
			Trial:   bp.Config{MaxIter: *bpIters},
			PhiSize: 50,
			WMax:    10,
			NS:      10,
			Policy:  bpsf.Sampled,
			Seed:    *seed,
		})
	}
	sfRes, err := sim.RunCircuit(d, r, sfMk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// convert schedule-model iteration units to time via the measured
	// per-iteration cost
	var totTime time.Duration
	totIters := 0
	for _, rec := range sfRes.Records {
		totTime += rec.Time
		totIters += rec.Iterations
	}
	iterUnit := time.Duration(0)
	if totIters > 0 {
		iterUnit = totTime / time.Duration(totIters)
	}

	gpu := sim.DefaultGPUModel()
	tb := sim.NewTable("decoder", "LER/round", "min ms", "median ms", "avg ms", "p99 ms", "max ms")
	ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
	row := func(label string, lerRound float64, ds []time.Duration) {
		st := sim.Summarize(ds)
		tb.Row(label, lerRound, ms(st.Min), ms(st.P50), ms(st.Avg), ms(st.P99), ms(st.Max))
	}

	times := func(recs []sim.Record) []time.Duration {
		out := make([]time.Duration, len(recs))
		for i, rec := range recs {
			out[i] = rec.Time
		}
		return out
	}
	row(osdRes.Decoder, osdRes.LERRound, times(osdRes.Records))
	row(sfRes.Decoder+" serial", sfRes.LERRound, times(sfRes.Records))
	for _, w := range modelWorkers {
		modeled := make([]time.Duration, len(sfRes.Records))
		for i, rec := range sfRes.Records {
			iters := sim.ScheduleLatency(rec.InitIterations, rec.TrialIterations, rec.TrialSuccess, w)
			modeled[i] = time.Duration(iters) * iterUnit
		}
		row(fmt.Sprintf("BP-SF P=%d (model)", w), sfRes.LERRound, modeled)
	}
	var gpuEst []time.Duration
	for _, rec := range sfRes.Records {
		gpuEst = append(gpuEst, gpu.Estimate(sim.Outcome{
			InitIterations:  rec.InitIterations,
			TrialIterations: rec.TrialIterations,
			TrialSuccess:    rec.TrialSuccess,
		}))
	}
	row("BP-SF (GPU_Est)", sfRes.LERRound, gpuEst)

	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
