package main

import (
	"strings"
	"testing"

	"bpsf/internal/codes"
	"bpsf/internal/noise"
	"bpsf/internal/sim"
)

// TestDecoderFactoryFlags is the table-driven -decoder validation: every
// registered name resolves to a working factory, unknown names fail with
// an error naming the available set (the CLI turns that into a non-zero
// exit via log.Fatal).
func TestDecoderFactoryFlags(t *testing.T) {
	base := decoderFlags{BPIters: 20, OSDOrder: 2, Phi: 4, WMax: 1, NS: 0, Seed: 1}
	cases := []struct {
		name    string
		decoder string
		wantErr bool
	}{
		{"bp", "bp", false},
		{"bposd", "bposd", false},
		{"bpsf", "bpsf", false},
		{"uf", "uf", false},
		{"unknown", "matching", true},
		{"empty", "", true},
		{"case-sensitive", "UF", true},
	}
	css, err := codes.RotatedSurface3()
	if err != nil {
		t.Fatal(err)
	}
	priors := noise.UniformPriors(css.N, 0.01)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base
			f.Name = tc.decoder
			mk, err := decoderFactory(f)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoder %q accepted", tc.decoder)
				}
				for _, known := range sim.DecoderNames() {
					if !strings.Contains(err.Error(), known) {
						t.Errorf("error %q does not name available decoder %q", err, known)
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			dec, err := mk(css.HZ, priors)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Name() == "" {
				t.Error("empty decoder name")
			}
		})
	}
}

// TestDecoderFlagsMatchRegistry pins the flag vocabulary to the registry:
// a decoder added to sim.Constructors must be reachable from the CLI.
func TestDecoderFlagsMatchRegistry(t *testing.T) {
	for _, name := range sim.DecoderNames() {
		if _, err := decoderFactory(decoderFlags{Name: name, BPIters: 10, Phi: 2, WMax: 1}); err != nil {
			t.Errorf("registered decoder %q rejected: %v", name, err)
		}
	}
}
