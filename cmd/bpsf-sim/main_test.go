package main

import (
	"strings"
	"testing"

	"bpsf/internal/codes"
	"bpsf/internal/noise"
	"bpsf/internal/sim"
)

// TestDecoderFactoryFlags is the table-driven -decoder validation: every
// registered name resolves to a working factory, unknown names fail with
// an error naming the available set (the CLI turns that into a non-zero
// exit via log.Fatal).
func TestDecoderFactoryFlags(t *testing.T) {
	base := decoderFlags{BPIters: 20, OSDOrder: 2, Phi: 4, WMax: 1, NS: 0, Seed: 1}
	cases := []struct {
		name    string
		decoder string
		window  int
		commit  int
		wantErr bool
	}{
		{"bp", "bp", 0, 0, false},
		{"bposd", "bposd", 0, 0, false},
		{"bpsf", "bpsf", 0, 0, false},
		{"uf", "uf", 0, 0, false},
		{"windowed-default", "windowed", 0, 0, false},
		{"windowed-explicit", "windowed", 4, 2, false},
		{"uf-windowed", "uf", 3, 1, false},
		{"bp-windowed", "bp", 2, 2, false},
		{"commit-exceeds-window", "uf", 2, 3, true},
		{"unknown", "matching", 0, 0, true},
		{"empty", "", 0, 0, true},
		{"case-sensitive", "UF", 0, 0, true},
	}
	css, err := codes.RotatedSurface3()
	if err != nil {
		t.Fatal(err)
	}
	priors := noise.UniformPriors(css.N, 0.01)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base
			f.Name = tc.decoder
			f.Window = tc.window
			f.Commit = tc.commit
			mk, err := decoderFactory(f)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoder %q (window=%d commit=%d) accepted", tc.decoder, tc.window, tc.commit)
				}
				if tc.window == 0 || tc.commit <= tc.window {
					for _, known := range sim.DecoderNames() {
						if !strings.Contains(err.Error(), known) {
							t.Errorf("error %q does not name available decoder %q", err, known)
						}
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			dec, err := mk(css.HZ, priors)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Name() == "" {
				t.Error("empty decoder name")
			}
		})
	}
}

// TestBatchFlagValues is the table-driven -batch validation: accepted
// values resolve to the batch/scalar toggle, anything else fails with an
// error naming the accepted set (the CLI exits non-zero via log.Fatal
// before any work runs).
func TestBatchFlagValues(t *testing.T) {
	cases := []struct {
		value   string
		want    bool
		wantErr bool
	}{
		{"on", true, false},
		{"off", false, false},
		{"true", true, false},
		{"false", false, false},
		{"1", true, false},
		{"0", false, false},
		{"", false, true},
		{"banana", false, true},
		{"ON", false, true}, // case-sensitive, like -decoder
		{"64", false, true},
	}
	for _, tc := range cases {
		t.Run("value="+tc.value, func(t *testing.T) {
			got, err := sim.ParseBatchFlag(tc.value)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("-batch %q accepted", tc.value)
				}
				if !strings.Contains(err.Error(), "on|off") {
					t.Errorf("error %q does not print the accepted set", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("-batch %q = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}

// TestDecoderFlagsMatchRegistry pins the flag vocabulary to the registry:
// a decoder added to sim.Constructors must be reachable from the CLI.
func TestDecoderFlagsMatchRegistry(t *testing.T) {
	for _, name := range sim.DecoderNames() {
		if _, err := decoderFactory(decoderFlags{Name: name, BPIters: 10, Phi: 2, WMax: 1}); err != nil {
			t.Errorf("registered decoder %q rejected: %v", name, err)
		}
	}
}
