// Command bpsf-sim runs a single logical-error-rate experiment: one code,
// one noise model, one decoder configuration, one error rate. It is the
// composable unit behind bpsf-figs, useful for exploring parameters the
// figures do not cover.
//
// Usage:
//
//	bpsf-sim -code bb144 -model circuit -decoder bpsf -p 0.003 -shots 1000 \
//	         -bp-iters 100 -phi 50 -wmax 10 -ns 10
//	bpsf-sim -code coprime154 -model capacity -decoder bposd -p 0.05 \
//	         -bp-iters 1000 -osd-order 10
//	bpsf-sim -code rsurf5 -model capacity -decoder uf -p 0.001 -shots 20000
//	bpsf-sim -code rsurf5 -model circuit -decoder uf -window 3 -commit 1 -p 0.001
//	bpsf-sim -code rsurf5 -model circuit -decoder uf -decode-batch -p 0.003 -shots 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"bpsf/internal/bp"
	"bpsf/internal/codes"
	"bpsf/internal/dem"
	"bpsf/internal/experiments"
	"bpsf/internal/memexp"
	"bpsf/internal/sim"
	"bpsf/internal/sparse"
	"bpsf/internal/window"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-sim: ")
	codeName := flag.String("code", "bb144", "code: "+fmt.Sprint(codes.Names()))
	model := flag.String("model", "capacity", "noise model: capacity | circuit")
	decoder := flag.String("decoder", "bpsf", "decoder: "+fmt.Sprint(sim.DecoderNames()))
	p := flag.Float64("p", 0.01, "physical error rate")
	shots := flag.Int("shots", 1000, "number of samples")
	seed := flag.Int64("seed", 1, "sampler seed")
	rounds := flag.Int("rounds", 0, "extraction rounds (0 = code default; circuit model)")
	maxErrs := flag.Int("max-logical-errors", 0, "stop after this many failures (0 = off)")

	bpIters := flag.Int("bp-iters", 100, "BP iteration cap")
	layered := flag.Bool("layered", false, "layered BP schedule")
	osdOrder := flag.Int("osd-order", 10, "OSD-CS order (bposd)")
	phi := flag.Int("phi", 50, "BP-SF candidate set size |Φ|")
	wmax := flag.Int("wmax", 10, "BP-SF maximum trial weight")
	ns := flag.Int("ns", 10, "BP-SF sampled trials per weight (0 = exhaustive)")
	trialWorkers := flag.Int("trial-workers", 0, "BP-SF parallel trial workers (within one decode)")
	windowRounds := flag.Int("window", 0,
		"sliding-window size in rounds: wrap the decoder in the streaming window scheduler (0 = whole-history decode)")
	commitRounds := flag.Int("commit", 1, "committed rounds per window (with -window)")
	workers := flag.Int("workers", runtime.NumCPU(),
		"Monte-Carlo shard workers (results are identical for any value)")
	batch := flag.String("batch", "on",
		"circuit model sampling: on = word-parallel 64-shot Pauli-frame sampling of the circuit, off = the retained per-shot DEM sampler (ignored by -model capacity)")
	decodeBatch := flag.Bool("decode-batch", false,
		"decode 64-shot blocks with the bitsliced batch kernels (circuit model; decoders: "+
			fmt.Sprint(sim.BatchDecoderNames())+"; incompatible with -window)")
	flag.Parse()

	useBatch, err := sim.ParseBatchFlag(*batch)
	if err != nil {
		log.Fatal(err)
	}

	entry, ok := codes.Catalog()[*codeName]
	if !ok {
		log.Fatalf("unknown code %q (known: %v)", *codeName, codes.Names())
	}
	css, err := entry.Build()
	if err != nil {
		log.Fatal(err)
	}

	flags := decoderFlags{
		Name:         *decoder,
		BPIters:      *bpIters,
		Layered:      *layered,
		OSDOrder:     *osdOrder,
		Phi:          *phi,
		WMax:         *wmax,
		NS:           *ns,
		TrialWorkers: *trialWorkers,
		Window:       *windowRounds,
		Commit:       *commitRounds,
		Seed:         *seed,
	}

	cfg := sim.Config{P: *p, Shots: *shots, Seed: *seed, MaxLogicalErrors: *maxErrs, Workers: *workers}
	var res *sim.Result
	switch *model {
	case "capacity":
		if *decodeBatch {
			log.Fatal("-decode-batch requires -model circuit")
		}
		// rows-as-rounds layout for -window (the zero Layout default)
		mk, ferr := decoderFactory(flags)
		if ferr != nil {
			log.Fatal(ferr)
		}
		res, err = sim.RunCapacity(css, mk, cfg)
	case "circuit":
		r := *rounds
		if r == 0 {
			r = entry.Rounds
		}
		// window the circuit problem along the memory-experiment rounds
		flags.Layout = window.MemexpLayout(css, r)
		var mk sim.Factory
		if !*decodeBatch {
			// the batch registry has its own vocabulary ("bpq" has no
			// scalar twin), so skip the scalar factory entirely
			var ferr error
			if mk, ferr = decoderFactory(flags); ferr != nil {
				log.Fatal(ferr)
			}
		}
		circ, berr := memexp.Build(css, r, memexp.Uniform())
		if berr != nil {
			log.Fatal(berr)
		}
		var d *dem.DEM
		d, err = dem.Extract(circ)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DEM: %d detectors, %d mechanisms\n", d.NumDets, d.NumMechs())
		switch {
		case *decodeBatch:
			if *windowRounds > 0 {
				log.Fatal("-decode-batch is incompatible with -window (batch kernels decode whole histories)")
			}
			mkb, berr := batchFactory(*decoder, *bpIters)
			if berr != nil {
				log.Fatal(berr)
			}
			if useBatch {
				// fully word-parallel: frame sampling AND bitsliced decode
				res, err = sim.RunCircuitFramesDecodeBatch(circ, d, r, mkb, cfg)
			} else {
				res, err = sim.RunCircuitDecodeBatch(d, r, mkb, cfg)
			}
		case useBatch:
			// word-parallel Pauli-frame sampling of the circuit itself
			res, err = sim.RunCircuitFrames(circ, d, r, mk, cfg)
		default:
			res, err = sim.RunCircuit(d, r, mk, cfg)
		}
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err != nil {
		log.Fatal(err)
	}

	tb := sim.NewTable("decoder", "p", "shots", "failures", "LER", "LER/round", "avg iters", "avg ms", "post used")
	tb.Row(res.Decoder, res.P, res.Shots, res.Failures, res.LER, res.LERRound,
		res.AvgIters, float64(res.AvgTime.Microseconds())/1000, res.PostUsed)
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// decoderFlags carries the -decoder flag and its tuning companions
// (alias of the shared experiments.CLIDecoderFlags).
type decoderFlags = experiments.CLIDecoderFlags

// decoderFactory resolves the flag set to a sim decoder factory through
// experiments.CLIFactory (one construction switch for the whole repo).
// Unknown decoder names report the available set (the CLI exits non-zero
// on the returned error); -window wraps the selection in the
// sliding-window scheduler.
func decoderFactory(f decoderFlags) (sim.Factory, error) {
	return experiments.CLIFactory(f)
}

// batchFactory resolves -decode-batch runs: the sim batch registry's
// vocabulary (uf, bp, bpq), with -bp-iters honored for the BP kernels.
func batchFactory(name string, bpIters int) (func(*sparse.Mat, []float64) (sim.BatchDecoder, error), error) {
	switch name {
	case "uf":
		return func(h *sparse.Mat, _ []float64) (sim.BatchDecoder, error) {
			return sim.NewUFBatch(h), nil
		}, nil
	case "bp", "bpq":
		quantized := name == "bpq"
		return func(h *sparse.Mat, priors []float64) (sim.BatchDecoder, error) {
			return sim.NewBPBatch(h, priors, bp.BatchConfig{MaxIter: bpIters, Quantized: quantized}), nil
		}, nil
	default:
		return nil, fmt.Errorf("decoder %q has no batch kernel (available: %v)", name, sim.BatchDecoderNames())
	}
}
