// Command bpsf-serve runs the streaming decode service: clients open
// sessions naming a code, round count, error rate and decoder spec, then
// stream framed syndrome batches and receive per-syndrome decode
// responses. Sessions share per-(code,rounds,p,spec) warm decoder pools
// with adaptive batch coalescing and deadline-based load shedding; see
// DESIGN.md §5 for the protocol and cmd/bpsf-load for a traffic source.
//
// Usage:
//
//	bpsf-serve -addr :7421 -pool-size 8 -queue-depth 1024
//
// SIGINT/SIGTERM drains gracefully: accepted work completes, final
// per-pool stats print on exit. SIGUSR1 dumps the full telemetry
// snapshot (pools, stage histograms, slowest traces, runtime) to stderr
// without disturbing service. -admin binds the HTTP telemetry plane:
// Prometheus /metrics, JSON /statusz and /debug/pprof (DESIGN.md §10).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bpsf/internal/service"
	"bpsf/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpsf-serve: ")
	addr := flag.String("addr", ":7421", "listen address")
	uds := flag.String("uds", "", "also listen on a Unix-domain socket at this path (co-located clients skip the TCP stack; a stale socket file is removed first)")
	admin := flag.String("admin", "", "admin/telemetry HTTP listen address serving /metrics, /statusz and /debug/pprof (empty = off)")
	poolSize := flag.Int("pool-size", runtime.NumCPU(), "warm decoders per pool")
	queueDepth := flag.Int("queue-depth", 1024, "admission queue bound per pool")
	maxBatch := flag.Int("max-batch", 32, "adaptive coalescing cap")
	decoders := flag.String("decoders", "", "served decoder kinds, comma-separated (empty = all of "+fmt.Sprint(service.SpecKinds())+")")
	windowRounds := flag.Int("window", 3, "default sliding-window size for streams opened without one")
	commitRounds := flag.Int("commit", 1, "default committed rounds per stream window")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "session grace period on shutdown")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop a session whose client sends nothing for this long (0 = never)")
	writeTimeout := flag.Duration("write-timeout", 0, "drop a session whose client stops reading replies for this long per flush (0 = never)")
	statsEvery := flag.Duration("stats", 0, "periodic stats interval (0 = only on exit)")
	quiet := flag.Bool("quiet", false, "suppress per-session log lines")
	noBatchDecode := flag.Bool("no-batch-decode", false,
		"disable the bitsliced batch-decode fast path (pools decode every request scalar; for performance A/B runs — responses are byte-identical either way)")
	flag.Parse()

	allowed, err := parseDecoderKinds(*decoders)
	if err != nil {
		log.Fatal(err)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	if *commitRounds < 1 || *commitRounds > *windowRounds {
		log.Fatalf("need 1 ≤ -commit ≤ -window, got -window %d -commit %d", *windowRounds, *commitRounds)
	}
	srv := service.NewServer(service.Options{
		PoolSize:     *poolSize,
		QueueDepth:   *queueDepth,
		MaxBatch:     *maxBatch,
		AllowedKinds: allowed,
		StreamWindow: *windowRounds,
		StreamCommit: *commitRounds,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		Logf:         logf,

		DisableBatchDecode: *noBatchDecode,
	})
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	if *uds != "" {
		// a socket file left by a dead previous run would fail the bind;
		// Remove only ever unlinks the path, never a live listener's state
		if err := os.Remove(*uds); err != nil && !os.IsNotExist(err) {
			log.Fatal(err)
		}
		if err := srv.ListenUnix(*uds); err != nil {
			log.Fatal(err)
		}
		log.Printf("also listening on unix socket %s", *uds)
	}
	log.Printf("listening on %s (pool-size=%d queue-depth=%d max-batch=%d stream-window=%d commit=%d)",
		srv.Addr(), *poolSize, *queueDepth, *maxBatch, *windowRounds, *commitRounds)
	if *admin != "" {
		adminAddr, err := srv.ServeAdmin(*admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("admin plane on http://%s (/metrics /statusz /debug/pprof)", adminAddr)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				printStats(srv.Stats())
				printStreamStats(srv.StreamingStats())
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	sig := waitSignals(sigs, func() { srv.Snapshot().WriteText(os.Stderr) })
	log.Printf("%v: draining (grace %v)", sig, *drainGrace)
	stats := srv.Drain(*drainGrace)
	printStats(stats)
	printStreamStats(srv.StreamingStats())
}

// waitSignals blocks until a terminating signal arrives, invoking onDump
// for each SIGUSR1 along the way (the live stats dump; service is not
// disturbed). Returns the terminating signal, or nil if the channel
// closes first.
func waitSignals(sigs <-chan os.Signal, onDump func()) os.Signal {
	for sig := range sigs {
		if sig == syscall.SIGUSR1 {
			onDump()
			continue
		}
		return sig
	}
	return nil
}

// parseDecoderKinds resolves the -decoders allowlist: a comma-separated
// subset of the registered kinds, or empty for all. Unknown names error
// with the available set (the CLI exits non-zero).
func parseDecoderKinds(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, k := range service.SpecKinds() {
		known[k] = true
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown decoder %q in -decoders (available: %v)", name, service.SpecKinds())
		}
		out = append(out, name)
	}
	return out, nil
}

// printStreamStats reports the windowed-stream plane (nothing when no
// stream was ever opened).
func printStreamStats(st service.StreamStats) {
	if st.Opened == 0 {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	tb := sim.NewTable("streams", "windows", "commit p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	tb.Row(st.Opened, st.Windows,
		ms(st.Latency.P50), ms(st.Latency.P95), ms(st.Latency.P99), ms(st.Latency.P999), ms(st.Latency.Max))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func printStats(stats []service.PoolStats) {
	if len(stats) == 0 {
		fmt.Println("no pools served")
		return
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	tb := sim.NewTable("pool", "size", "decoded", "shed(queue)", "shed(deadline)",
		"avg batch", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "max ms")
	for _, st := range stats {
		tb.Row(st.Pool, st.Size, st.Decoded, st.ShedQueue, st.ShedDeadline, st.AvgBatch,
			ms(st.Latency.P50), ms(st.Latency.P95), ms(st.Latency.P99), ms(st.Latency.P999), ms(st.Latency.Max))
	}
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
