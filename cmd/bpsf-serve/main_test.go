package main

import (
	"reflect"
	"strings"
	"testing"

	"bpsf/internal/service"
)

// TestParseDecoderKinds is the table-driven -decoders validation: known
// subsets parse, unknown names error naming the available set.
func TestParseDecoderKinds(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"", nil, false},
		{"uf", []string{"uf"}, false},
		{"bp,bposd", []string{"bp", "bposd"}, false},
		{"bp, uf", []string{"bp", "uf"}, false},     // spaces trimmed
		{"bpsf,,uf", []string{"bpsf", "uf"}, false}, // empty element skipped
		{"matching", nil, true},                     // unknown
		{"bp,nope", nil, true},                      // one bad name poisons the list
		{"UF", nil, true},                           // case-sensitive
	}
	for _, tc := range cases {
		got, err := parseDecoderKinds(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: accepted", tc.in)
			} else if !strings.Contains(err.Error(), "available") {
				t.Errorf("%q: error %q does not show the available set", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
		}
	}
	// every registered kind must be accepted individually
	for _, k := range service.SpecKinds() {
		if _, err := parseDecoderKinds(k); err != nil {
			t.Errorf("registered kind %q rejected: %v", k, err)
		}
	}
}
