package main

import (
	"os"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"bpsf/internal/service"
)

// TestParseDecoderKinds is the table-driven -decoders validation: known
// subsets parse, unknown names error naming the available set.
func TestParseDecoderKinds(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"", nil, false},
		{"uf", []string{"uf"}, false},
		{"bp,bposd", []string{"bp", "bposd"}, false},
		{"bp, uf", []string{"bp", "uf"}, false},     // spaces trimmed
		{"bpsf,,uf", []string{"bpsf", "uf"}, false}, // empty element skipped
		{"matching", nil, true},                     // unknown
		{"bp,nope", nil, true},                      // one bad name poisons the list
		{"UF", nil, true},                           // case-sensitive
	}
	for _, tc := range cases {
		got, err := parseDecoderKinds(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: accepted", tc.in)
			} else if !strings.Contains(err.Error(), "available") {
				t.Errorf("%q: error %q does not show the available set", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
		}
	}
	// every registered kind must be accepted individually
	for _, k := range service.SpecKinds() {
		if _, err := parseDecoderKinds(k); err != nil {
			t.Errorf("registered kind %q rejected: %v", k, err)
		}
	}
}

// TestWaitSignals is the table-driven signal dispatch check: SIGUSR1
// dumps stats and keeps waiting, the first terminating signal returns,
// and a closed channel returns nil (no dump on teardown).
func TestWaitSignals(t *testing.T) {
	cases := []struct {
		name      string
		deliver   []os.Signal
		wantDumps int
		wantSig   os.Signal
	}{
		{"interrupt alone", []os.Signal{os.Interrupt}, 0, os.Interrupt},
		{"term alone", []os.Signal{syscall.SIGTERM}, 0, syscall.SIGTERM},
		{"usr1 then interrupt", []os.Signal{syscall.SIGUSR1, os.Interrupt}, 1, os.Interrupt},
		{"repeated usr1 then term", []os.Signal{syscall.SIGUSR1, syscall.SIGUSR1, syscall.SIGUSR1, syscall.SIGTERM}, 3, syscall.SIGTERM},
		{"usr1 after nothing else", []os.Signal{syscall.SIGUSR1}, 1, nil}, // channel closes
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sigs := make(chan os.Signal, len(tc.deliver))
			for _, s := range tc.deliver {
				sigs <- s
			}
			close(sigs)
			dumps := 0
			got := waitSignals(sigs, func() { dumps++ })
			if got != tc.wantSig {
				t.Fatalf("returned %v, want %v", got, tc.wantSig)
			}
			if dumps != tc.wantDumps {
				t.Fatalf("dumped %d times, want %d", dumps, tc.wantDumps)
			}
		})
	}
}
